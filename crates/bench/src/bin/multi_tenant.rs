//! The `multi_tenant` benchmark: N reasoner sessions sharing one
//! `Runtime` (worker pool + flusher) vs N independent `Slider`s, each
//! with a private pool.
//!
//! Three questions, per the shared-runtime design:
//!
//! 1. **Thread economy** — N sessions on one runtime must run on exactly
//!    `workers + 1` threads, vs `N × (workers + 1)` for the isolated
//!    fleet.
//! 2. **Ingest latency under co-tenant churn** — one tenant streams
//!    membership batches (timed per `add_triples` call, p50/p99) while a
//!    co-tenant's huge deferred-retraction backlog is flushed by the
//!    shared flusher under `RuntimeConfig::maintenance_budget`. The
//!    budget slices the co-tenant's coalesced DRed so the shared-pool p99
//!    stays close to the isolated baseline (two private pools, no budget
//!    needed).
//! 3. **Flush throughput** — how fast the sliced flush drains the backlog
//!    (retractions/s), and how many per-tick deferrals it took.
//!
//! ```text
//! cargo run --release -p slider-bench --bin multi_tenant            # full
//! cargo run --release -p slider-bench --bin multi_tenant -- --smoke # CI
//! ```
//!
//! `--smoke` shrinks the workload and verifies every session's final
//! store against the `RecomputeOracle` closure. `--json <path>` writes
//! the machine-readable trajectory (`slider_bench::report`).

use slider_baseline::RecomputeOracle;
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{family, parse_bench_args};
use slider_core::{Runtime, RuntimeConfig, Slider, SliderConfig};
use slider_model::{Dictionary, NodeId, Triple};
use slider_rules::Ruleset;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Params {
    /// Sessions attached to the shared runtime (thread-economy phase).
    sessions: usize,
    /// Worker threads per pool (the shared runtime's, and each isolated
    /// reasoner's).
    workers: usize,
    /// Ingest tenant: membership batches streamed, and members per batch
    /// (family workload, one family, resident chain of `depth`).
    depth: u64,
    batches: u64,
    members: u64,
    /// Churn tenant: plain triples preloaded, and how many of them are
    /// deferred-retracted as one backlog before the ingest run starts.
    churn_preload: u64,
    churn_retract: u64,
    /// Verify final stores against the oracle closure.
    verify: bool,
    /// Per-tick budget for the shared runtime's sliced flushes. The
    /// smoke run uses `Duration::ZERO` — the starvation governor still
    /// grants exactly one slice per tick, so the backlog *must* defer
    /// (the `deferrals > 0` smoke assertion stays deterministic on any
    /// machine speed); the full run uses a realistic budget.
    budget: Duration,
}

const SMOKE: Params = Params {
    sessions: 8,
    workers: 2,
    depth: 5,
    batches: 40,
    members: 10,
    churn_preload: 600,
    churn_retract: 450,
    verify: true,
    budget: Duration::ZERO,
};

const FULL: Params = Params {
    sessions: 8,
    workers: 4,
    depth: 12,
    batches: 200,
    members: 40,
    churn_preload: 20_000,
    churn_retract: 15_000,
    verify: false,
    budget: Duration::from_micros(500),
};

/// The churn tenant's configuration: the deferred queue only drains on
/// the max-age deadline (no threshold), so the whole backlog is flushed
/// by the flusher thread — monolithically on a private runtime, sliced
/// under the budget on the shared one.
fn churn_config() -> SliderConfig {
    SliderConfig::default()
        .with_maintenance_batch(usize::MAX)
        .with_maintenance_max_age(Some(Duration::from_millis(1)))
}

/// A plain (underivable) churn triple — DRed still walks its downward
/// closure, so the backlog costs real maintenance work per slice.
fn churn_triple(k: u64) -> Triple {
    Triple::new(NodeId(700_000 + k), NodeId(42_000), NodeId(800_000 + k))
}

/// The ingest tenant's stream: the resident chain, then `batches`
/// membership batches (family 0 of the shared [`family`] workload).
fn ingest_params(p: &Params) -> family::FamilyParams {
    family::FamilyParams {
        families: 1,
        depth: p.depth,
        batch: p.members,
        shared: 0,
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct LatencyCell {
    /// Per-`add_triples` latencies, sorted ascending.
    latencies: Vec<Duration>,
    /// Time for the churn backlog to drain completely.
    flush_drain: Duration,
    /// `StatsSnapshot::budget_deferrals` of the churn session at the end.
    deferrals: u64,
    /// Threads the setup ran on (pools + flushers, not user threads).
    threads: usize,
}

/// One timed cell: the ingest tenant streams its batches (timed per
/// call) while the churn tenant's backlog — enqueued just before the
/// stream starts — is flushed by the deadline flusher. `shared = true`
/// runs both tenants as sessions of one budgeted `Runtime`; otherwise
/// each is a standalone `Slider` with a private pool.
fn run_latency_cell(p: &Params, shared: bool) -> LatencyCell {
    let fp = ingest_params(p);
    let runtime = shared.then(|| {
        Runtime::new(
            RuntimeConfig::default()
                .with_workers(p.workers)
                .with_maintenance_budget(Some(p.budget)),
        )
    });
    let session = |ruleset: Ruleset, config: SliderConfig| match &runtime {
        Some(rt) => rt.session(Arc::new(Dictionary::new()), ruleset, config),
        None => Slider::new(
            Arc::new(Dictionary::new()),
            ruleset,
            config.with_workers(p.workers),
        ),
    };

    let churn = session(Ruleset::rho_df(), churn_config());
    let ingest = session(family::ruleset(1), SliderConfig::default());
    let threads = match &runtime {
        Some(rt) => rt.thread_count(),
        None => churn.runtime().thread_count() + ingest.runtime().thread_count(),
    };

    let preload: Vec<Triple> = (0..p.churn_preload).map(churn_triple).collect();
    churn.add_triples(&preload);
    churn.wait_idle();
    ingest.add_triples(&family::taxonomy(&fp));
    ingest.wait_idle();

    // Enqueue the whole backlog, then stream: the deadline fires ~1 ms in,
    // so the flush overlaps the timed ingest calls.
    assert_eq!(
        churn.remove_deferred(&preload[..p.churn_retract as usize]),
        p.churn_retract as usize
    );
    let flush_started = Instant::now();
    let mut latencies = Vec::with_capacity(p.batches as usize);
    for i in 0..p.batches {
        let batch = family::batch(&fp, i);
        let start = Instant::now();
        ingest.add_triples(&batch);
        latencies.push(start.elapsed());
    }
    ingest.wait_idle();

    // Drain the backlog completely (bounded) to time flush throughput.
    let deadline = Instant::now() + Duration::from_secs(120);
    while churn.stats().pending_removals > 0 {
        assert!(Instant::now() < deadline, "churn backlog never drained");
        std::thread::sleep(Duration::from_micros(200));
    }
    let flush_drain = flush_started.elapsed();
    let stats = churn.stats();
    assert_eq!(stats.retracted, p.churn_retract);

    if p.verify {
        let mut oracle = RecomputeOracle::new(family::ruleset(1));
        oracle.add(&family::taxonomy(&fp));
        for i in 0..p.batches {
            oracle.add(&family::batch(&fp, i));
        }
        assert_eq!(
            ingest.store().to_sorted_vec(),
            oracle.to_sorted_vec(),
            "ingest tenant diverged from the oracle closure"
        );
        let mut survivors: Vec<Triple> = (p.churn_retract..p.churn_preload)
            .map(churn_triple)
            .collect();
        survivors.sort_unstable();
        assert_eq!(
            churn.store().to_sorted_vec(),
            survivors,
            "churn tenant's sliced flush missed the exact closure"
        );
    }

    latencies.sort_unstable();
    LatencyCell {
        latencies,
        flush_drain,
        deferrals: stats.budget_deferrals,
        threads,
    }
}

fn main() {
    let (smoke, json_path) = parse_bench_args("multi_tenant [--smoke] [--json <path>]");
    let p = if smoke { SMOKE } else { FULL };
    let mut report = BenchReport::new(
        "multi_tenant",
        format!(
            "{} sessions / {} workers; ingest {} batches × {} members vs {} deferred retractions",
            p.sessions, p.workers, p.batches, p.members, p.churn_retract
        ),
    )
    .config("smoke", smoke)
    .config("sessions", p.sessions)
    .config("workers", p.workers)
    .config("budget_us", p.budget.as_micros());
    println!(
        "multi_tenant bench: {} sessions on {} workers, budget {:?}{}",
        p.sessions,
        p.workers,
        p.budget,
        if smoke { " [smoke]" } else { "" }
    );

    // --- phase 1: thread economy — N sessions, one pool ----------------
    {
        let runtime = Runtime::new(RuntimeConfig::default().with_workers(p.workers));
        let fp = ingest_params(&p);
        let sessions: Vec<Slider> = (0..p.sessions)
            .map(|_| {
                runtime.session(
                    Arc::new(Dictionary::new()),
                    family::ruleset(1),
                    SliderConfig::default(),
                )
            })
            .collect();
        let shared_threads = runtime.thread_count();
        std::thread::scope(|scope| {
            for session in &sessions {
                scope.spawn(move || {
                    session.add_triples(&family::taxonomy(&fp));
                    for i in 0..p.batches.min(10) {
                        session.add_triples(&family::batch(&fp, i));
                    }
                    session.wait_idle();
                });
            }
        });
        if p.verify {
            let mut oracle = RecomputeOracle::new(family::ruleset(1));
            oracle.add(&family::taxonomy(&fp));
            for i in 0..p.batches.min(10) {
                oracle.add(&family::batch(&fp, i));
            }
            let expected = oracle.to_sorted_vec();
            for (i, session) in sessions.iter().enumerate() {
                assert_eq!(
                    session.store().to_sorted_vec(),
                    expected,
                    "session {i} diverged on the shared pool"
                );
            }
            println!(
                "  ✓ all {} session stores match the oracle closure",
                p.sessions
            );
        }
        let isolated_threads = p.sessions * (p.workers + 1);
        println!(
            "thread economy: {} sessions share {} threads (isolated fleet would hold {})",
            p.sessions, shared_threads, isolated_threads
        );
        assert_eq!(
            shared_threads,
            p.workers + 1,
            "a session spawned its own threads"
        );
        report.push(
            Cell::new(format!("threads/{}-sessions", p.sessions))
                .param("phase", "threads")
                .param("sessions", p.sessions)
                .metric("shared_threads", shared_threads as f64)
                .metric("isolated_threads", isolated_threads as f64),
        );
    }

    // --- phase 2: ingest latency + flush throughput, shared vs isolated
    let mut p99s = [Duration::ZERO; 2];
    for (idx, (label, shared)) in [("isolated", false), ("shared", true)]
        .into_iter()
        .enumerate()
    {
        let cell = run_latency_cell(&p, shared);
        let (p50, p99) = (
            percentile(&cell.latencies, 0.50),
            percentile(&cell.latencies, 0.99),
        );
        p99s[idx] = p99;
        let flush_rate = p.churn_retract as f64 / cell.flush_drain.as_secs_f64().max(1e-9);
        println!(
            "  {label:>8}: ingest p50 {:>8.3} ms, p99 {:>8.3} ms | backlog drained in \
             {:>8.2} ms ({:>9.0} retractions/s, {} budget deferrals) on {} threads",
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
            cell.flush_drain.as_secs_f64() * 1e3,
            flush_rate,
            cell.deferrals,
            cell.threads,
        );
        report.push(
            Cell::new(format!("latency/{label}"))
                .param("phase", "latency")
                .param("pool", label)
                .param("threads", cell.threads)
                .metric("ingest_p50_ms", p50.as_secs_f64() * 1e3)
                .metric("ingest_p99_ms", p99.as_secs_f64() * 1e3)
                .metric("flush_drain_ms", cell.flush_drain.as_secs_f64() * 1e3)
                .metric("flush_retractions_per_sec", flush_rate)
                .metric("budget_deferrals", cell.deferrals as f64),
        );
        if shared {
            assert!(
                cell.deferrals > 0,
                "the shared flush was never sliced — the budget did nothing"
            );
        }
    }
    println!(
        "shared-pool ingest p99 is {:.2}x the isolated baseline \
         (co-tenant flushing {} retractions under a {:?} budget)",
        p99s[1].as_secs_f64() / p99s[0].as_secs_f64().max(1e-9),
        p.churn_retract,
        p.budget,
    );

    if let Some(path) = json_path {
        report.write(&path).expect("bench trajectory written");
    }
}
