//! The `ingest` benchmark: multi-producer ingest + materialise throughput
//! under the two-level sharded store lock vs the paper's global lock.
//!
//! The workload is the shared [`family`] shape:
//! several independent rule families (a `Transitive` hierarchy plus a
//! `Subsumption` membership rule per family, disjoint vocabularies), so
//! every producer feeds — and every rule's distributor writes back into —
//! its own predicate family. Under the old global `RwLock` every one of
//! those writes serialises on a single writer lock; under the sharded
//! store ([`SliderConfig::with_store_shards`]) disjoint families hash to
//! disjoint shards and proceed concurrently. `shards = 1` *is* the global
//! lock (one shard behind the same gate), so the comparison isolates
//! exactly the locking change.
//!
//! A third, **read-heavy** phase races N query threads against one
//! writer on the raw store, comparing the pre-epoch locked read path
//! (`ShardedStore::read`, gate + shard read locks per query batch)
//! against the lock-free epoch read path (`ShardedStore::matches`,
//! answered from the published snapshot).
//!
//! ```text
//! cargo run --release -p slider-bench --bin ingest            # full size
//! cargo run --release -p slider-bench --bin ingest -- --smoke # CI smoke
//! ```
//!
//! `--smoke` runs a tiny workload and verifies the final store of **every**
//! (shards × workers) cell against the `RecomputeOracle` closure.
//! `--json <path>` additionally writes the machine-readable trajectory
//! (`slider_bench::report`) for cross-commit comparison.

use slider_baseline::RecomputeOracle;
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{family, parse_bench_args};
use slider_core::{Slider, SliderConfig};
use slider_model::{Dictionary, NodeId, Triple};
use slider_store::TriplePattern;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Params {
    /// Independent rule families (= disjoint predicate shards, with high
    /// probability at 16 shards).
    families: u64,
    /// Depth of each family's resident class chain.
    depth: u64,
    /// Membership batches per family.
    batches: u64,
    /// Instance-membership triples per batch.
    members: u64,
    /// Producer/worker counts to sweep.
    workers: &'static [usize],
    /// Verify every cell against the oracle closure.
    verify: bool,
}

const SMOKE: Params = Params {
    families: 4,
    depth: 5,
    batches: 6,
    members: 5,
    workers: &[1, 2],
    verify: true,
};

const FULL: Params = Params {
    families: 8,
    depth: 14,
    batches: 80,
    members: 50,
    workers: &[1, 2, 4],
    verify: false,
};

/// Shard counts compared: 1 = the global-lock baseline, 16 = the default
/// sharded store.
const SHARD_POINTS: [(&str, usize); 2] = [("global", 1), ("sharded", 16)];

/// Everything one producer feeds for family `f`: the resident chain, then
/// per batch a fresh leaf linked into the chain plus its members. Uses the
/// shared [`family`] vocabulary helpers so the rules wire up identically
/// to the retraction bench.
fn family_feed(f: u64, p: &Params) -> Vec<Triple> {
    let mut feed: Vec<Triple> = (0..p.depth - 1)
        .map(|d| {
            Triple::new(
                family::class(f, d),
                family::trans_pred(f),
                family::class(f, d + 1),
            )
        })
        .collect();
    for i in 0..p.batches {
        let leaf = family::batch_leaf(f, i);
        feed.push(Triple::new(
            leaf,
            family::trans_pred(f),
            family::class(f, 0),
        ));
        for k in 0..p.members {
            let inst = NodeId(1_000_000 + f * 100_000 + i * p.members + k);
            feed.push(Triple::new(inst, family::is_pred(f), leaf));
        }
    }
    feed
}

/// One timed **raw store** cell: `producers` threads concurrently
/// `insert_batch` their families' feeds straight into a `ShardedStore`
/// (no reasoner) — the isolated locking comparison. Returns the elapsed
/// time and the store for verification.
fn run_store_cell(
    feeds: &[Vec<Triple>],
    shards: usize,
    producers: usize,
) -> (Duration, slider_store::ShardedStore) {
    let store = slider_store::ShardedStore::with_shards(shards);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let store = &store;
            let mine: Vec<&[Triple]> = feeds
                .iter()
                .enumerate()
                .filter(|(f, _)| f % producers == tid)
                .map(|(_, feed)| feed.as_slice())
                .collect();
            scope.spawn(move || {
                let mut fresh = Vec::new();
                for feed in mine {
                    for chunk in feed.chunks(32) {
                        fresh.clear();
                        store.insert_batch(chunk, &mut fresh);
                    }
                }
            });
        }
    });
    (start.elapsed(), store)
}

/// One timed cell: `producers` threads concurrently feed their families
/// (family `f` belongs to producer `f % producers`) into a reasoner with
/// `shards` store shards and `producers` pool workers, then settle.
fn run_cell(p: &Params, shards: usize, producers: usize) -> (Duration, Slider) {
    let config = SliderConfig::batch()
        .with_workers(producers)
        .with_buffer_capacity(64)
        .with_store_shards(shards);
    let slider = Arc::new(Slider::new(
        Arc::new(Dictionary::new()),
        family::ruleset(p.families),
        config,
    ));
    let feeds: Vec<Vec<Triple>> = (0..p.families).map(|f| family_feed(f, p)).collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let slider = Arc::clone(&slider);
            let mine: Vec<&[Triple]> = feeds
                .iter()
                .enumerate()
                .filter(|(f, _)| f % producers == tid)
                .map(|(_, feed)| feed.as_slice())
                .collect();
            scope.spawn(move || {
                for feed in mine {
                    for chunk in feed.chunks(32) {
                        slider.add_triples(chunk);
                    }
                }
            });
        }
    });
    slider.wait_idle();
    let elapsed = start.elapsed();
    let slider = Arc::into_inner(slider).expect("producers joined");
    (elapsed, slider)
}

/// One timed **read-heavy** cell: `readers` threads each run `sweeps`
/// rounds of pattern queries over every family predicate while one writer
/// continuously feeds the workload into the store (cycling once the feed
/// is exhausted, so writes contend for the cell's whole duration).
/// `locked` readers pin the gate + shard read locks per query
/// ([`slider_store::ShardedStore::read`], the pre-epoch read path);
/// lock-free readers answer from the published epoch
/// ([`slider_store::ShardedStore::matches`]). Returns the time for all
/// readers to finish, the total queries completed, and the store for
/// verification.
fn run_read_cell(
    feeds: &[Vec<Triple>],
    families: u64,
    readers: usize,
    sweeps: u64,
    locked: bool,
) -> (Duration, u64, slider_store::ShardedStore) {
    let store = slider_store::ShardedStore::with_shards(16);
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let (store, queries) = (&store, &queries);
                scope.spawn(move || {
                    for _ in 0..sweeps {
                        for f in 0..families {
                            let pattern = TriplePattern::with_p(family::trans_pred(f));
                            if locked {
                                let snap = store.read();
                                std::hint::black_box(snap.matches(pattern));
                            } else {
                                std::hint::black_box(store.matches(pattern));
                            }
                            queries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        let writer = scope.spawn(|| {
            let mut fresh = Vec::new();
            // First pass runs to completion — the verified final store
            // must contain the whole workload; later cycles just keep the
            // write locks hot and bail as soon as the readers are done.
            for feed in feeds {
                for chunk in feed.chunks(32) {
                    fresh.clear();
                    store.insert_batch(chunk, &mut fresh);
                }
            }
            while !done.load(Ordering::Relaxed) {
                for feed in feeds {
                    for chunk in feed.chunks(32) {
                        fresh.clear();
                        store.insert_batch(chunk, &mut fresh);
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                }
            }
        });
        for handle in handles {
            handle.join().expect("reader panicked");
        }
        let elapsed = start.elapsed();
        done.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
        elapsed
    });
    (elapsed, queries.load(Ordering::Relaxed), store)
}

fn main() {
    let (smoke, json_path) = parse_bench_args("ingest [--smoke] [--json <path>]");
    let p = if smoke { SMOKE } else { FULL };

    let input: usize = (0..p.families).map(|f| family_feed(f, &p).len()).sum();
    let runs = if smoke { 1 } else { 3 };
    let mut report = BenchReport::new(
        "ingest",
        format!(
            "{} families × depth {}, {} batches × {} members ({} input triples)",
            p.families, p.depth, p.batches, p.members, input
        ),
    )
    .best_of(runs)
    .config("smoke", smoke)
    .config("families", p.families)
    .config("input_triples", input);
    println!(
        "ingest bench: {} families × depth {}, {} batches × {} members — {} input triples{}",
        p.families,
        p.depth,
        p.batches,
        p.members,
        input,
        if smoke { " [smoke]" } else { "" }
    );

    // The oracle closure of the whole feed (same for every cell).
    let expected: Option<Vec<Triple>> = p.verify.then(|| {
        let mut oracle = RecomputeOracle::new(family::ruleset(p.families));
        for f in 0..p.families {
            oracle.add(&family_feed(f, &p));
        }
        oracle.to_sorted_vec()
    });

    // Untimed warm-up (allocator, page cache, thread spin-up) so the first
    // measured cell is not penalised; then best-of-N per cell to damp
    // scheduler noise.
    let _ = run_cell(&p, 1, p.workers[0]);

    // --- phase 1: raw store ingest (locking isolated, no reasoner) -----
    println!(
        "raw store ingest ({} producers × disjoint families):",
        p.workers.last().unwrap()
    );
    let feeds: Vec<Vec<Triple>> = (0..p.families).map(|f| family_feed(f, &p)).collect();
    for &workers in p.workers {
        let mut elapsed = [Duration::ZERO; SHARD_POINTS.len()];
        for (cell, &(label, shards)) in SHARD_POINTS.iter().enumerate() {
            let (mut took, mut store) = run_store_cell(&feeds, shards, workers);
            for _ in 1..runs {
                let (t, s) = run_store_cell(&feeds, shards, workers);
                if t < took {
                    (took, store) = (t, s);
                }
            }
            elapsed[cell] = took;
            println!(
                "  {workers} producer(s), {label:>7}: {:>9.2} ms, {:>10.0} triples/s \
                 ({} shard write conflicts)",
                took.as_secs_f64() * 1e3,
                input as f64 / took.as_secs_f64().max(1e-9),
                store.shard_write_conflicts(),
            );
            report.push(
                Cell::new(format!("raw-store/{label}/{workers}-producers"))
                    .param("phase", "raw-store")
                    .param("locking", label)
                    .param("shards", shards)
                    .param("producers", workers)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric(
                        "triples_per_sec",
                        input as f64 / took.as_secs_f64().max(1e-9),
                    ),
            );
            if p.verify {
                let mut want: Vec<Triple> = feeds.iter().flatten().copied().collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(store.to_sorted_vec(), want, "{label} store lost triples");
            }
        }
        println!(
            "  {workers} producer(s): sharded is {:.2}x the global-lock baseline",
            elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9)
        );
    }

    // --- phase 2: read-heavy — N readers vs 1 writer, locked vs epoch --
    let read_threads = *p.workers.last().unwrap();
    let sweeps: u64 = if smoke { 100 } else { 400 };
    println!("read-heavy ({read_threads} reader(s) × {sweeps} sweeps racing 1 writer, 16 shards):");
    {
        let mut rates = [0f64; 2];
        for (cell, (label, locked)) in [("locked", true), ("lock-free", false)]
            .into_iter()
            .enumerate()
        {
            let (mut took, mut qs, mut store) =
                run_read_cell(&feeds, p.families, read_threads, sweeps, locked);
            for _ in 1..runs {
                let (t, q, s) = run_read_cell(&feeds, p.families, read_threads, sweeps, locked);
                if t < took {
                    (took, qs, store) = (t, q, s);
                }
            }
            rates[cell] = qs as f64 / took.as_secs_f64().max(1e-9);
            println!(
                "  {label:>9} readers: {:>9.2} ms to drain, {:>7} queries, {:>10.0} queries/s",
                took.as_secs_f64() * 1e3,
                qs,
                rates[cell],
            );
            report.push(
                Cell::new(format!("read-heavy/{label}/{read_threads}-readers"))
                    .param("phase", "read-heavy")
                    .param("read_path", label)
                    .param("readers", read_threads)
                    .param("sweeps", sweeps)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric("queries", qs as f64)
                    .metric("queries_per_sec", rates[cell]),
            );
            if p.verify {
                let mut want: Vec<Triple> = feeds.iter().flatten().copied().collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(
                    store.to_sorted_vec(),
                    want,
                    "{label} read-heavy cell lost writes"
                );
                println!("    ✓ store complete under racing {label} readers");
            }
        }
        println!(
            "  lock-free readers sustained {:.2}x the locked baseline's query rate",
            rates[1] / rates[0].max(1e-9)
        );
    }

    println!("end-to-end ingest + materialise:");

    for &workers in p.workers {
        let mut elapsed = [Duration::ZERO; SHARD_POINTS.len()];
        for (cell, &(label, shards)) in SHARD_POINTS.iter().enumerate() {
            let (mut took, mut slider) = run_cell(&p, shards, workers);
            for _ in 1..runs {
                let (t, s) = run_cell(&p, shards, workers);
                if t < took {
                    (took, slider) = (t, s);
                }
            }
            elapsed[cell] = took;
            let stats = slider.stats();
            println!(
                "  {workers} worker(s), {label:>7} ({shards:>2} shard{}): {:>9.2} ms, \
                 {:>9.0} triples/s  ({} shard write conflicts)",
                if shards == 1 { "" } else { "s" },
                took.as_secs_f64() * 1e3,
                input as f64 / took.as_secs_f64().max(1e-9),
                stats.shard_write_conflicts,
            );
            report.push(
                Cell::new(format!("end-to-end/{label}/{workers}-workers"))
                    .param("phase", "end-to-end")
                    .param("locking", label)
                    .param("shards", shards)
                    .param("workers", workers)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric(
                        "triples_per_sec",
                        input as f64 / took.as_secs_f64().max(1e-9),
                    )
                    .metric("store_size", stats.store_size as f64),
            );
            if let Some(expected) = &expected {
                assert_eq!(
                    &slider.store().to_sorted_vec(),
                    expected,
                    "{label} store at {workers} worker(s) diverged from the oracle closure"
                );
                println!("    ✓ store matches the RecomputeOracle closure");
            }
        }
        println!(
            "  {workers} worker(s): sharded is {:.2}x the global-lock baseline",
            elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9)
        );
    }

    if let Some(path) = json_path {
        report.write(&path).expect("bench trajectory written");
    }
}
