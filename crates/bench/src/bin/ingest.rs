//! The `ingest` benchmark: multi-producer ingest + materialise throughput
//! under the two-level sharded store lock vs the paper's global lock.
//!
//! The workload is the shared [`family`] shape:
//! several independent rule families (a `Transitive` hierarchy plus a
//! `Subsumption` membership rule per family, disjoint vocabularies), so
//! every producer feeds — and every rule's distributor writes back into —
//! its own predicate family. Under the old global `RwLock` every one of
//! those writes serialises on a single writer lock; under the sharded
//! store ([`SliderConfig::with_store_shards`]) disjoint families hash to
//! disjoint shards and proceed concurrently. `shards = 1` *is* the global
//! lock (one shard behind the same gate), so the comparison isolates
//! exactly the locking change.
//!
//! A third, **read-heavy** phase races N query threads against one
//! writer on the raw store, comparing the pre-epoch locked read path
//! (`ShardedStore::read`, gate + shard read locks per query batch)
//! against the lock-free epoch read path (`ShardedStore::matches`,
//! answered from the published snapshot).
//!
//! ```text
//! cargo run --release -p slider-bench --bin ingest            # full size
//! cargo run --release -p slider-bench --bin ingest -- --smoke # CI smoke
//! ```
//!
//! `--smoke` runs a tiny workload and verifies the final store of **every**
//! (shards × workers) cell against the `RecomputeOracle` closure.
//! `--json <path>` additionally writes the machine-readable trajectory
//! (`slider_bench::report`) for cross-commit comparison.

use slider_baseline::RecomputeOracle;
use slider_bench::report::{BenchReport, Cell};
use slider_bench::{family, parse_bench_args};
use slider_core::{Slider, SliderConfig};
use slider_model::{DictConfig, Dictionary, NodeId, Term, TermTriple, Triple};
use slider_rules::Ruleset;
use slider_store::TriplePattern;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Params {
    /// Independent rule families (= disjoint predicate shards, with high
    /// probability at 16 shards).
    families: u64,
    /// Depth of each family's resident class chain.
    depth: u64,
    /// Membership batches per family.
    batches: u64,
    /// Instance-membership triples per batch.
    members: u64,
    /// Producer/worker counts to sweep.
    workers: &'static [usize],
    /// Verify every cell against the oracle closure.
    verify: bool,
}

const SMOKE: Params = Params {
    families: 4,
    depth: 5,
    batches: 6,
    members: 5,
    workers: &[1, 2],
    verify: true,
};

const FULL: Params = Params {
    families: 8,
    depth: 14,
    batches: 80,
    members: 50,
    workers: &[1, 2, 4],
    verify: false,
};

/// Shard counts compared: 1 = the global-lock baseline, 16 = the default
/// sharded store.
const SHARD_POINTS: [(&str, usize); 2] = [("global", 1), ("sharded", 16)];

/// Everything one producer feeds for family `f`: the resident chain, then
/// per batch a fresh leaf linked into the chain plus its members. Uses the
/// shared [`family`] vocabulary helpers so the rules wire up identically
/// to the retraction bench.
fn family_feed(f: u64, p: &Params) -> Vec<Triple> {
    let mut feed: Vec<Triple> = (0..p.depth - 1)
        .map(|d| {
            Triple::new(
                family::class(f, d),
                family::trans_pred(f),
                family::class(f, d + 1),
            )
        })
        .collect();
    for i in 0..p.batches {
        let leaf = family::batch_leaf(f, i);
        feed.push(Triple::new(
            leaf,
            family::trans_pred(f),
            family::class(f, 0),
        ));
        for k in 0..p.members {
            let inst = NodeId(1_000_000 + f * 100_000 + i * p.members + k);
            feed.push(Triple::new(inst, family::is_pred(f), leaf));
        }
    }
    feed
}

/// One timed **raw store** cell: `producers` threads concurrently
/// `insert_batch` their families' feeds straight into a `ShardedStore`
/// (no reasoner) — the isolated locking comparison. Returns the elapsed
/// time and the store for verification.
fn run_store_cell(
    feeds: &[Vec<Triple>],
    shards: usize,
    producers: usize,
) -> (Duration, slider_store::ShardedStore) {
    let store = slider_store::ShardedStore::with_shards(shards);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let store = &store;
            let mine: Vec<&[Triple]> = feeds
                .iter()
                .enumerate()
                .filter(|(f, _)| f % producers == tid)
                .map(|(_, feed)| feed.as_slice())
                .collect();
            scope.spawn(move || {
                let mut fresh = Vec::new();
                for feed in mine {
                    for chunk in feed.chunks(32) {
                        fresh.clear();
                        store.insert_batch(chunk, &mut fresh);
                    }
                }
            });
        }
    });
    (start.elapsed(), store)
}

/// One timed cell: `producers` threads concurrently feed their families
/// (family `f` belongs to producer `f % producers`) into a reasoner with
/// `shards` store shards and `producers` pool workers, then settle.
fn run_cell(p: &Params, shards: usize, producers: usize) -> (Duration, Slider) {
    let config = SliderConfig::batch()
        .with_workers(producers)
        .with_buffer_capacity(64)
        .with_store_shards(shards);
    let slider = Arc::new(Slider::new(
        Arc::new(Dictionary::new()),
        family::ruleset(p.families),
        config,
    ));
    let feeds: Vec<Vec<Triple>> = (0..p.families).map(|f| family_feed(f, p)).collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let slider = Arc::clone(&slider);
            let mine: Vec<&[Triple]> = feeds
                .iter()
                .enumerate()
                .filter(|(f, _)| f % producers == tid)
                .map(|(_, feed)| feed.as_slice())
                .collect();
            scope.spawn(move || {
                for feed in mine {
                    for chunk in feed.chunks(32) {
                        slider.add_triples(chunk);
                    }
                }
            });
        }
    });
    slider.wait_idle();
    let elapsed = start.elapsed();
    let slider = Arc::into_inner(slider).expect("producers joined");
    (elapsed, slider)
}

/// One timed **read-heavy** cell: `readers` threads each run `sweeps`
/// rounds of pattern queries over every family predicate while one writer
/// continuously feeds the workload into the store (cycling once the feed
/// is exhausted, so writes contend for the cell's whole duration).
/// `locked` readers pin the gate + shard read locks per query
/// ([`slider_store::ShardedStore::read`], the pre-epoch read path);
/// lock-free readers answer from the published epoch
/// ([`slider_store::ShardedStore::matches`]). Returns the time for all
/// readers to finish, the total queries completed, and the store for
/// verification.
fn run_read_cell(
    feeds: &[Vec<Triple>],
    families: u64,
    readers: usize,
    sweeps: u64,
    locked: bool,
) -> (Duration, u64, slider_store::ShardedStore) {
    let store = slider_store::ShardedStore::with_shards(16);
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let (store, queries) = (&store, &queries);
                scope.spawn(move || {
                    for _ in 0..sweeps {
                        for f in 0..families {
                            let pattern = TriplePattern::with_p(family::trans_pred(f));
                            if locked {
                                let snap = store.read();
                                std::hint::black_box(snap.matches(pattern));
                            } else {
                                std::hint::black_box(store.matches(pattern));
                            }
                            queries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        let writer = scope.spawn(|| {
            let mut fresh = Vec::new();
            // First pass runs to completion — the verified final store
            // must contain the whole workload; later cycles just keep the
            // write locks hot and bail as soon as the readers are done.
            for feed in feeds {
                for chunk in feed.chunks(32) {
                    fresh.clear();
                    store.insert_batch(chunk, &mut fresh);
                }
            }
            while !done.load(Ordering::Relaxed) {
                for feed in feeds {
                    for chunk in feed.chunks(32) {
                        fresh.clear();
                        store.insert_batch(chunk, &mut fresh);
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                }
            }
        });
        for handle in handles {
            handle.join().expect("reader panicked");
        }
        let elapsed = start.elapsed();
        done.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
        elapsed
    });
    (elapsed, queries.load(Ordering::Relaxed), store)
}

/// Per-thread vocabulary lists for the dictionary-contention cell:
/// `overlap` makes every thread intern the *same* terms (pure index
/// contention — every insert races); disjoint lists only collide on
/// shard hash.
fn dict_vocab(threads: usize, per_thread: usize, overlap: bool) -> Vec<Vec<Term>> {
    (0..threads)
        .map(|t| {
            let tag = if overlap { 0 } else { t };
            (0..per_thread)
                .map(|i| Term::iri(format!("http://bench/dict/{tag}/term-{i}")))
                .collect()
        })
        .collect()
}

/// One timed dictionary-interning cell: one thread per vocabulary list,
/// all interning into a dictionary with `shards` term→id index shards
/// (`1` = the global-lock baseline). Returns the elapsed time and the
/// dictionary for verification.
fn run_dict_cell(lists: &[Vec<Term>], shards: usize) -> (Duration, Dictionary) {
    let dict = Dictionary::with_config(DictConfig { shards });
    let start = Instant::now();
    std::thread::scope(|scope| {
        for list in lists {
            let dict = &dict;
            scope.spawn(move || {
                for term in list {
                    std::hint::black_box(dict.intern(term));
                }
            });
        }
    });
    (start.elapsed(), dict)
}

/// Smoke check for the dictionary-contention cells: whatever the shard
/// count, interning the same vocabulary must yield the same **dense** id
/// set (one id per distinct term, no holes above the vocabulary), every
/// term must round-trip through id→term lookup, and a closure computed
/// over triples encoded by each dictionary must decode identically — the
/// sharded index changes contention, never term assignments.
fn verify_dict_agreement(lists: &[Vec<Term>], global: &Dictionary, sharded: &Dictionary) {
    let mut distinct: Vec<&Term> = lists.iter().flatten().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let base = slider_model::vocab::VOCAB_LEN as u64;
    for dict in [global, sharded] {
        assert_eq!(dict.len(), slider_model::vocab::VOCAB_LEN + distinct.len());
        let mut ids: Vec<u64> = distinct
            .iter()
            .map(|t| dict.id_of(t).expect("term interned").0)
            .collect();
        ids.sort_unstable();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id, base + i as u64, "interned ids are not dense");
        }
        for &t in &distinct {
            let id = dict.id_of(t).expect("term interned");
            assert_eq!(dict.lookup(id).as_ref(), Some(t), "id→term round-trip");
        }
    }
    // Same closure through either dictionary: a subClassOf chain over the
    // first distinct terms, encoded per-dictionary (so the raw NodeIds
    // may differ), closed by the oracle, decoded back to terms.
    let sco = Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf");
    let chain: Vec<TermTriple> = distinct
        .windows(2)
        .take(40)
        .map(|w| (w[0].clone(), sco.clone(), w[1].clone()))
        .collect();
    let closure_terms = |dict: &Dictionary| -> Vec<TermTriple> {
        let encoded: Vec<Triple> = chain.iter().map(|t| dict.encode_triple(t)).collect();
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        oracle.add(&encoded);
        let mut decoded: Vec<TermTriple> = oracle
            .to_sorted_vec()
            .into_iter()
            .map(|t| dict.decode_triple(t).expect("closure ids decode"))
            .collect();
        decoded.sort();
        decoded
    };
    assert_eq!(
        closure_terms(global),
        closure_terms(sharded),
        "oracle closure diverged across dictionary shard counts"
    );
}

fn main() {
    let (smoke, json_path) = parse_bench_args("ingest [--smoke] [--json <path>]");
    let p = if smoke { SMOKE } else { FULL };

    let input: usize = (0..p.families).map(|f| family_feed(f, &p).len()).sum();
    let runs = if smoke { 1 } else { 3 };
    let mut report = BenchReport::new(
        "ingest",
        format!(
            "{} families × depth {}, {} batches × {} members ({} input triples)",
            p.families, p.depth, p.batches, p.members, input
        ),
    )
    .best_of(runs)
    .config("smoke", smoke)
    .config("families", p.families)
    .config("input_triples", input);
    println!(
        "ingest bench: {} families × depth {}, {} batches × {} members — {} input triples{}",
        p.families,
        p.depth,
        p.batches,
        p.members,
        input,
        if smoke { " [smoke]" } else { "" }
    );

    // The oracle closure of the whole feed (same for every cell).
    let expected: Option<Vec<Triple>> = p.verify.then(|| {
        let mut oracle = RecomputeOracle::new(family::ruleset(p.families));
        for f in 0..p.families {
            oracle.add(&family_feed(f, &p));
        }
        oracle.to_sorted_vec()
    });

    // Untimed warm-up (allocator, page cache, thread spin-up) so the first
    // measured cell is not penalised; then best-of-N per cell to damp
    // scheduler noise.
    let _ = run_cell(&p, 1, p.workers[0]);

    // --- phase 1: raw store ingest (locking isolated, no reasoner) -----
    println!(
        "raw store ingest ({} producers × disjoint families):",
        p.workers.last().unwrap()
    );
    let feeds: Vec<Vec<Triple>> = (0..p.families).map(|f| family_feed(f, &p)).collect();
    for &workers in p.workers {
        let mut elapsed = [Duration::ZERO; SHARD_POINTS.len()];
        for (cell, &(label, shards)) in SHARD_POINTS.iter().enumerate() {
            let (mut took, mut store) = run_store_cell(&feeds, shards, workers);
            for _ in 1..runs {
                let (t, s) = run_store_cell(&feeds, shards, workers);
                if t < took {
                    (took, store) = (t, s);
                }
            }
            elapsed[cell] = took;
            println!(
                "  {workers} producer(s), {label:>7}: {:>9.2} ms, {:>10.0} triples/s \
                 ({} shard write conflicts)",
                took.as_secs_f64() * 1e3,
                input as f64 / took.as_secs_f64().max(1e-9),
                store.shard_write_conflicts(),
            );
            report.push(
                Cell::new(format!("raw-store/{label}/{workers}-producers"))
                    .param("phase", "raw-store")
                    .param("locking", label)
                    .param("shards", shards)
                    .param("producers", workers)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric(
                        "triples_per_sec",
                        input as f64 / took.as_secs_f64().max(1e-9),
                    ),
            );
            if p.verify {
                let mut want: Vec<Triple> = feeds.iter().flatten().copied().collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(store.to_sorted_vec(), want, "{label} store lost triples");
            }
        }
        println!(
            "  {workers} producer(s): sharded is {:.2}x the global-lock baseline",
            elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9)
        );
    }

    // --- phase 2: read-heavy — N readers vs 1 writer, locked vs epoch --
    let read_threads = *p.workers.last().unwrap();
    let sweeps: u64 = if smoke { 100 } else { 400 };
    println!("read-heavy ({read_threads} reader(s) × {sweeps} sweeps racing 1 writer, 16 shards):");
    {
        let mut rates = [0f64; 2];
        for (cell, (label, locked)) in [("locked", true), ("lock-free", false)]
            .into_iter()
            .enumerate()
        {
            let (mut took, mut qs, mut store) =
                run_read_cell(&feeds, p.families, read_threads, sweeps, locked);
            for _ in 1..runs {
                let (t, q, s) = run_read_cell(&feeds, p.families, read_threads, sweeps, locked);
                if t < took {
                    (took, qs, store) = (t, q, s);
                }
            }
            rates[cell] = qs as f64 / took.as_secs_f64().max(1e-9);
            println!(
                "  {label:>9} readers: {:>9.2} ms to drain, {:>7} queries, {:>10.0} queries/s",
                took.as_secs_f64() * 1e3,
                qs,
                rates[cell],
            );
            report.push(
                Cell::new(format!("read-heavy/{label}/{read_threads}-readers"))
                    .param("phase", "read-heavy")
                    .param("read_path", label)
                    .param("readers", read_threads)
                    .param("sweeps", sweeps)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric("queries", qs as f64)
                    .metric("queries_per_sec", rates[cell]),
            );
            if p.verify {
                let mut want: Vec<Triple> = feeds.iter().flatten().copied().collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(
                    store.to_sorted_vec(),
                    want,
                    "{label} read-heavy cell lost writes"
                );
                println!("    ✓ store complete under racing {label} readers");
            }
        }
        println!(
            "  lock-free readers sustained {:.2}x the locked baseline's query rate",
            rates[1] / rates[0].max(1e-9)
        );
    }

    println!("end-to-end ingest + materialise:");

    for &workers in p.workers {
        let mut elapsed = [Duration::ZERO; SHARD_POINTS.len()];
        for (cell, &(label, shards)) in SHARD_POINTS.iter().enumerate() {
            let (mut took, mut slider) = run_cell(&p, shards, workers);
            for _ in 1..runs {
                let (t, s) = run_cell(&p, shards, workers);
                if t < took {
                    (took, slider) = (t, s);
                }
            }
            elapsed[cell] = took;
            let stats = slider.stats();
            println!(
                "  {workers} worker(s), {label:>7} ({shards:>2} shard{}): {:>9.2} ms, \
                 {:>9.0} triples/s  ({} shard write conflicts)",
                if shards == 1 { "" } else { "s" },
                took.as_secs_f64() * 1e3,
                input as f64 / took.as_secs_f64().max(1e-9),
                stats.shard_write_conflicts,
            );
            report.push(
                Cell::new(format!("end-to-end/{label}/{workers}-workers"))
                    .param("phase", "end-to-end")
                    .param("locking", label)
                    .param("shards", shards)
                    .param("workers", workers)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric(
                        "triples_per_sec",
                        input as f64 / took.as_secs_f64().max(1e-9),
                    )
                    .metric("store_size", stats.store_size as f64),
            );
            if let Some(expected) = &expected {
                assert_eq!(
                    &slider.store().to_sorted_vec(),
                    expected,
                    "{label} store at {workers} worker(s) diverged from the oracle closure"
                );
                println!("    ✓ store matches the RecomputeOracle closure");
            }
        }
        println!(
            "  {workers} worker(s): sharded is {:.2}x the global-lock baseline",
            elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9)
        );
    }

    // --- phase 4: dictionary interning contention ----------------------
    let dict_threads = *p.workers.last().unwrap();
    let per_thread = if smoke { 2_000 } else { 50_000 };
    println!(
        "dict interning ({dict_threads} thread(s) × {per_thread} terms, \
         global vs sharded term→id index):"
    );
    for (mode, overlap) in [("disjoint", false), ("overlapping", true)] {
        let lists = dict_vocab(dict_threads, per_thread, overlap);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut elapsed = [Duration::ZERO; SHARD_POINTS.len()];
        let mut dicts: Vec<Dictionary> = Vec::new();
        for (cell, &(label, shards)) in SHARD_POINTS.iter().enumerate() {
            let (mut took, mut dict) = run_dict_cell(&lists, shards);
            for _ in 1..runs {
                let (t, d) = run_dict_cell(&lists, shards);
                if t < took {
                    (took, dict) = (t, d);
                }
            }
            elapsed[cell] = took;
            let stats = dict.stats();
            println!(
                "  {mode:>11}, {label:>7}: {:>9.2} ms, {:>10.0} terms/s \
                 ({} shard conflicts)",
                took.as_secs_f64() * 1e3,
                total as f64 / took.as_secs_f64().max(1e-9),
                stats.shard_conflicts,
            );
            report.push(
                Cell::new(format!("dict-intern/{mode}/{label}"))
                    .param("phase", "dict-intern")
                    .param("vocabularies", mode)
                    .param("dict_shards", shards)
                    .param("threads", dict_threads)
                    .metric("elapsed_ms", took.as_secs_f64() * 1e3)
                    .metric("terms_per_sec", total as f64 / took.as_secs_f64().max(1e-9))
                    .metric("shard_conflicts", stats.shard_conflicts as f64),
            );
            dicts.push(dict);
        }
        println!(
            "  {mode:>11}: sharded is {:.2}x the global-index baseline",
            elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64().max(1e-9)
        );
        if p.verify {
            verify_dict_agreement(&lists, &dicts[0], &dicts[1]);
            println!("    ✓ global and sharded agree: dense ids, round-trips, same closure");
        }
    }

    // --- phase 5: dictionary footprint & post-retraction compaction ----
    {
        let members = if smoke { 2_000 } else { 50_000 };
        println!("dict footprint (load {members} members, retract the burst, auto-sweep):");
        let dict = Arc::new(Dictionary::new());
        let slider = Slider::new(Arc::clone(&dict), Ruleset::rho_df(), SliderConfig::batch());
        let sco = Term::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf");
        let ty = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        let class = |d: usize| Term::iri(format!("http://bench/class-{d}"));
        let schema: Vec<TermTriple> = (0..10)
            .map(|d| (class(d), sco.clone(), class(d + 1)))
            .collect();
        let burst: Vec<TermTriple> = (0..members)
            .map(|i| {
                (
                    Term::iri(format!("http://bench/member-{i}")),
                    ty.clone(),
                    class(0),
                )
            })
            .collect();
        slider.add_terms(&schema);
        slider.add_terms_owned(burst.clone());
        slider.wait_idle();
        let loaded = dict.stats();
        let start = Instant::now();
        let removed = slider.remove_terms(&burst);
        let took = start.elapsed();
        assert_eq!(removed, members, "the whole burst was explicit");
        let after = dict.stats();
        let reclaim = 1.0 - after.bytes_estimate as f64 / loaded.bytes_estimate.max(1) as f64;
        println!(
            "  loaded: {:>6} terms, {:>9} bytes",
            loaded.terms, loaded.bytes_estimate
        );
        println!(
            "  swept:  {:>6} terms, {:>9} bytes after {} sweep(s) — \
             {:.1}% reclaimed ({:.2} ms retract+sweep)",
            after.terms,
            after.bytes_estimate,
            after.sweeps,
            reclaim * 100.0,
            took.as_secs_f64() * 1e3,
        );
        report.push(
            Cell::new("dict-footprint/retraction-burst")
                .param("phase", "dict-footprint")
                .param("members", members)
                .metric("bytes_after_load", loaded.bytes_estimate as f64)
                .metric("bytes_after_sweep", after.bytes_estimate as f64)
                .metric("reclaim_ratio", reclaim)
                .metric("sweeps", after.sweeps as f64)
                .metric("tombstones", after.tombstones as f64)
                .metric("retract_sweep_ms", took.as_secs_f64() * 1e3),
        );
        if p.verify {
            assert!(after.sweeps >= 1, "the retraction burst should auto-sweep");
            assert!(
                reclaim >= 0.30,
                "sweep reclaimed only {:.1}% of dict bytes",
                reclaim * 100.0
            );
            // Every id still reachable from the store survived the sweep.
            for t in &schema {
                for term in [&t.0, &t.1, &t.2] {
                    let id = dict.id_of(term).expect("schema term survived the sweep");
                    assert_eq!(dict.lookup(id).as_ref(), Some(term));
                }
            }
            println!("    ✓ sweep reclaimed ≥ 30% of dict bytes; store-referenced ids intact");
        }
    }

    if let Some(path) = json_path {
        report.write(&path).expect("bench trajectory written");
    }
}
