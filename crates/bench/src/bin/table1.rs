//! Regenerates **Table 1** of the paper: the 13-ontology benchmark of
//! Slider vs the batch baseline (OWLIM-SE stand-in), on ρdf and RDFS.
//!
//! ```text
//! cargo run --release -p slider-bench --bin table1 -- [--scale F] [--full] [--csv PATH]
//! ```
//!
//! * `--scale F` scales the large ontologies' sizes (chains always run at
//!   paper size). Default 0.1, or the `SLIDER_SCALE` env var.
//! * `--full` = `--scale 1.0` (paper sizes; BSBM_5M needs several GB and
//!   minutes per engine).
//! * `--csv PATH` additionally writes the raw measurements as CSV.

use slider_bench::{env_scale, render_csv, render_table, table1_row};
use slider_core::SliderConfig;
use slider_workloads::ONTOLOGIES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = env_scale(0.1);
    let mut csv_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = 1.0,
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a positive number");
            }
            "--csv" => {
                csv_path = Some(iter.next().expect("--csv needs a path").clone());
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: table1 [--scale F] [--full] [--csv PATH]");
                std::process::exit(2);
            }
        }
    }

    let config = SliderConfig::default();
    eprintln!(
        "# Table 1 reproduction — scale {scale} (chains at paper size), \
         buffer {} triples, timeout {:?}, {} workers",
        config.buffer_capacity, config.timeout, config.workers
    );

    let mut rows = Vec::new();
    for &ontology in &ONTOLOGIES {
        eprintln!("running {ontology} …");
        rows.push(table1_row(ontology, scale, &config));
    }
    println!("{}", render_table(&rows));

    if let Some(path) = csv_path {
        std::fs::write(&path, render_csv(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
