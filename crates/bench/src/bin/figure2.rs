//! Regenerates **Figure 2** of the paper: the rules dependency graph for
//! ρdf (and, as an extension, RDFS), in Graphviz DOT and as an adjacency
//! listing.
//!
//! ```text
//! cargo run --release -p slider-bench --bin figure2 -- [--fragment rdfs]
//! ```

use slider_model::Dictionary;
use slider_rules::{DependencyGraph, Fragment, Ruleset};
use std::sync::Arc;

fn main() {
    let fragment = match std::env::args().nth(2).as_deref() {
        Some("rdfs") | Some("RDFS") => Fragment::Rdfs,
        _ => Fragment::RhoDf,
    };
    let dict = Arc::new(Dictionary::new());
    let ruleset = Ruleset::fragment(fragment, &dict);
    let graph = DependencyGraph::build(&ruleset);

    println!(
        "# Rules dependency graph for {} ({} rules, {} edges)",
        fragment,
        graph.len(),
        graph.edge_count()
    );
    println!(
        "# Universal input: {}",
        graph
            .universal_inputs()
            .into_iter()
            .map(|i| graph.name(i))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();
    for i in 0..graph.len() {
        let succ: Vec<&str> = graph.successors(i).iter().map(|&j| graph.name(j)).collect();
        println!("{:<10} -> {}", graph.name(i), succ.join(", "));
    }
    println!();
    println!("{}", graph.to_dot());
}
