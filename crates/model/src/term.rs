//! Decoded RDF terms: IRIs, literals and blank nodes.

use std::fmt;

/// The lexical payload of an RDF literal.
///
/// Datatype IRIs and language tags are stored as plain strings here; the
/// [`Dictionary`](crate::Dictionary) interns the whole literal as one term,
/// which is all the ρdf/RDFS rules need (they never inspect literal
/// structure except for "is a literal", rule rdfs1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, unescaped (what appears between the quotes).
    pub lexical: String,
    /// Plain / language-tagged / datatyped.
    pub kind: LiteralKind,
}

/// Distinguishes the three N-Triples literal shapes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// `"abc"` — a simple literal (implicitly `xsd:string` in RDF 1.1).
    Plain,
    /// `"abc"@en` — a language-tagged string.
    Lang(String),
    /// `"1"^^<http://www.w3.org/2001/XMLSchema#integer>` — a typed literal.
    /// The datatype IRI is stored without angle brackets.
    Typed(String),
}

impl Literal {
    /// A simple (plain) literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Lang(tag.into()),
        }
    }

    /// A datatyped literal. `datatype` is the IRI without angle brackets.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }
}

/// A decoded RDF term.
///
/// `Term` is the boundary representation: parsers produce it and the
/// dictionary interns it to a [`NodeId`](crate::NodeId). Everything inside
/// the reasoner operates on ids only.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored without the surrounding `<` `>`.
    Iri(String),
    /// A literal.
    Literal(Literal),
    /// A blank node, stored without the `_:` prefix.
    Blank(String),
}

impl Term {
    /// Shorthand for an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Shorthand for a plain literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(value))
    }

    /// Shorthand for a blank node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// The coarse kind of this term (used by rules such as rdfs1).
    pub fn kind(&self) -> TermKind {
        match self {
            Term::Iri(_) => TermKind::Iri,
            Term::Literal(_) => TermKind::Literal,
            Term::Blank(_) => TermKind::Blank,
        }
    }

    /// Returns the IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// True if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

/// Coarse classification of a term, cheap to query per [`NodeId`](crate::NodeId).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TermKind {
    /// An IRI.
    Iri = 0,
    /// A literal.
    Literal = 1,
    /// A blank node.
    Blank = 2,
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax (escaping handled by the parser
    /// crate's writer; this `Display` is for diagnostics and uses a minimal
    /// escape of quotes/backslashes/newlines only).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn esc(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
            for c in s.chars() {
                match c {
                    '"' => write!(f, "\\\"")?,
                    '\\' => write!(f, "\\\\")?,
                    '\n' => write!(f, "\\n")?,
                    '\r' => write!(f, "\\r")?,
                    _ => write!(f, "{c}")?,
                }
            }
            Ok(())
        }
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => {
                write!(f, "\"")?;
                esc(f, &lit.lexical)?;
                write!(f, "\"")?;
                match &lit.kind {
                    LiteralKind::Plain => Ok(()),
                    LiteralKind::Lang(tag) => write!(f, "@{tag}"),
                    LiteralKind::Typed(dt) => write!(f, "^^<{dt}>"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kinds() {
        assert_eq!(Term::iri("http://a").kind(), TermKind::Iri);
        assert_eq!(Term::literal("x").kind(), TermKind::Literal);
        assert_eq!(Term::blank("b0").kind(), TermKind::Blank);
        assert!(Term::literal("x").is_literal());
        assert!(!Term::iri("x").is_literal());
    }

    #[test]
    fn as_iri() {
        assert_eq!(Term::iri("http://a").as_iri(), Some("http://a"));
        assert_eq!(Term::literal("a").as_iri(), None);
    }

    #[test]
    fn display_ntriples_shapes() {
        assert_eq!(Term::iri("http://a#b").to_string(), "<http://a#b>");
        assert_eq!(Term::blank("x1").to_string(), "_:x1");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::lang("hi", "en")).to_string(),
            "\"hi\"@en"
        );
        assert_eq!(
            Term::Literal(Literal::typed(
                "1",
                "http://www.w3.org/2001/XMLSchema#integer"
            ))
            .to_string(),
            "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn display_escapes_quotes_and_newlines() {
        assert_eq!(
            Term::literal("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn literal_equality_distinguishes_kind() {
        assert_ne!(
            Term::Literal(Literal::plain("a")),
            Term::Literal(Literal::lang("a", "en"))
        );
        assert_ne!(
            Term::Literal(Literal::typed("a", "dt1")),
            Term::Literal(Literal::typed("a", "dt2"))
        );
    }
}
