//! Dictionary-encoded triples.

use crate::{NodeId, Term};
use std::fmt;

/// A dictionary-encoded RDF triple: three [`NodeId`]s.
///
/// This is the unit of work everywhere inside the reasoner: 24 bytes,
/// `Copy`, compared and hashed as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: NodeId,
    /// Predicate.
    pub p: NodeId,
    /// Object.
    pub o: NodeId,
}

impl Triple {
    /// Builds a triple from its three components.
    #[inline]
    pub const fn new(s: NodeId, p: NodeId, o: NodeId) -> Self {
        Triple { s, p, o }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.s, self.p, self.o)
    }
}

impl From<(NodeId, NodeId, NodeId)> for Triple {
    fn from((s, p, o): (NodeId, NodeId, NodeId)) -> Self {
        Triple { s, p, o }
    }
}

/// A decoded triple of [`Term`]s — the boundary representation produced by
/// parsers and generators before dictionary encoding.
pub type TermTriple = (Term, Term, Term);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let t = Triple::new(NodeId(1), NodeId(2), NodeId(3));
        assert_eq!(t, Triple::from((NodeId(1), NodeId(2), NodeId(3))));
        assert_ne!(t, Triple::new(NodeId(1), NodeId(2), NodeId(4)));
    }

    #[test]
    fn display() {
        let t = Triple::new(NodeId(1), NodeId(2), NodeId(3));
        assert_eq!(t.to_string(), "(#1 #2 #3)");
    }

    #[test]
    fn is_small_and_copy() {
        assert_eq!(std::mem::size_of::<Triple>(), 24);
        let t = Triple::new(NodeId(0), NodeId(0), NodeId(0));
        let u = t; // Copy
        assert_eq!(t, u);
    }

    #[test]
    fn ordering_is_spo_lexicographic() {
        let a = Triple::new(NodeId(1), NodeId(5), NodeId(5));
        let b = Triple::new(NodeId(2), NodeId(0), NodeId(0));
        assert!(a < b);
    }
}
