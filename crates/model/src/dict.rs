//! The term dictionary: bidirectional, concurrent interning of RDF terms.
//!
//! This is the paper's Input Manager dictionary ("maps the expensive URIs …
//! to Longs"). It is shared by every input source and by the reasoner:
//! multiple parser threads may intern concurrently while rule modules decode
//! ids for tracing.

use crate::hash::FxHashMap;
use crate::term::{Term, TermKind};
use crate::triple::{TermTriple, Triple};
use crate::vocab::{self, NodeId};
use parking_lot::{MappedRwLockReadGuard, RwLock, RwLockReadGuard};

#[derive(Default)]
struct Inner {
    /// id → term. Dense: `terms[i]` is the term of `NodeId(i)`.
    terms: Vec<Term>,
    /// term → id.
    index: FxHashMap<Term, NodeId>,
}

/// A concurrent, bidirectional term ↔ id dictionary.
///
/// * ids are dense (`0, 1, 2, …` in interning order);
/// * ids `0..VOCAB_LEN` are the RDF/RDFS vocabulary ([`crate::vocab`]);
/// * interning the same term twice returns the same id;
/// * term *kinds* (IRI / literal / blank) are kept in a dedicated lock so
///   hot rules (rdfs1, rdfs4b) can hold a cheap read guard over just the
///   kind table while joining.
pub struct Dictionary {
    inner: RwLock<Inner>,
    kinds: RwLock<Vec<TermKind>>,
}

impl Dictionary {
    /// Creates a dictionary with the vocabulary pre-interned at fixed ids.
    pub fn new() -> Self {
        let dict = Dictionary {
            inner: RwLock::new(Inner::default()),
            kinds: RwLock::new(Vec::new()),
        };
        for iri in vocab::ALL {
            dict.intern(&Term::iri(*iri));
        }
        debug_assert_eq!(dict.len(), vocab::VOCAB_LEN);
        dict
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&self, term: &Term) -> NodeId {
        // Fast path: already interned.
        if let Some(&id) = self.inner.read().index.get(term) {
            return id;
        }
        self.intern_slow(term.clone())
    }

    /// Interns an owned term, avoiding a clone when the term is fresh.
    pub fn intern_owned(&self, term: Term) -> NodeId {
        if let Some(&id) = self.inner.read().index.get(&term) {
            return id;
        }
        self.intern_slow(term)
    }

    #[cold]
    fn intern_slow(&self, term: Term) -> NodeId {
        let mut inner = self.inner.write();
        // Double-check: another thread may have interned it meanwhile.
        if let Some(&id) = inner.index.get(&term) {
            return id;
        }
        let id = NodeId(inner.terms.len() as u64);
        let kind = term.kind();
        inner.terms.push(term.clone());
        inner.index.insert(term, id);
        // Keep the kind table in lock-step. Taking the second lock while
        // holding the first serialises growth, which is what we want: a
        // reader of `kinds` never observes an id it cannot classify *if* it
        // obtained the id from the dictionary before locking.
        self.kinds.write().push(kind);
        id
    }

    /// Returns the id of `term` if it has been interned.
    pub fn id_of(&self, term: &Term) -> Option<NodeId> {
        self.inner.read().index.get(term).copied()
    }

    /// Returns a clone of the term with id `id`.
    pub fn lookup(&self, id: NodeId) -> Option<Term> {
        self.inner.read().terms.get(id.index()).cloned()
    }

    /// Runs `f` on the term with id `id` without cloning it.
    pub fn with_term<R>(&self, id: NodeId, f: impl FnOnce(&Term) -> R) -> Option<R> {
        self.inner.read().terms.get(id.index()).map(f)
    }

    /// The kind (IRI / literal / blank) of `id`.
    pub fn kind(&self, id: NodeId) -> Option<TermKind> {
        self.kinds.read().get(id.index()).copied()
    }

    /// True if `id` is an interned literal.
    pub fn is_literal(&self, id: NodeId) -> bool {
        self.kind(id) == Some(TermKind::Literal)
    }

    /// A read guard over the kind table, for batch classification in hot
    /// rule loops. The guard indexes by [`NodeId`].
    pub fn kinds(&self) -> KindTable<'_> {
        KindTable {
            guard: RwLockReadGuard::map(self.kinds.read(), |v| v.as_slice()),
        }
    }

    /// Number of interned terms (including the vocabulary).
    pub fn len(&self) -> usize {
        self.inner.read().terms.len()
    }

    /// True if only… never: the vocabulary is always present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodes a decoded triple.
    pub fn encode_triple(&self, t: &TermTriple) -> Triple {
        Triple {
            s: self.intern(&t.0),
            p: self.intern(&t.1),
            o: self.intern(&t.2),
        }
    }

    /// Encodes an owned decoded triple.
    pub fn encode_triple_owned(&self, t: TermTriple) -> Triple {
        Triple {
            s: self.intern_owned(t.0),
            p: self.intern_owned(t.1),
            o: self.intern_owned(t.2),
        }
    }

    /// Decodes a triple back to terms; `None` if any id is unknown.
    pub fn decode_triple(&self, t: Triple) -> Option<TermTriple> {
        Some((self.lookup(t.s)?, self.lookup(t.p)?, self.lookup(t.o)?))
    }

    /// Formats a triple in N-Triples-like syntax for diagnostics.
    pub fn format_triple(&self, t: Triple) -> String {
        let part = |id: NodeId| {
            self.lookup(id)
                .map(|term| term.to_string())
                .unwrap_or_else(|| format!("{id}"))
        };
        format!("{} {} {} .", part(t.s), part(t.p), part(t.o))
    }
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary::new()
    }
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary")
            .field("len", &self.len())
            .finish()
    }
}

/// Read guard over the term-kind table (see [`Dictionary::kinds`]).
pub struct KindTable<'a> {
    guard: MappedRwLockReadGuard<'a, [TermKind]>,
}

impl KindTable<'_> {
    /// The kind of `id`, if known.
    #[inline]
    pub fn kind(&self, id: NodeId) -> Option<TermKind> {
        self.guard.get(id.index()).copied()
    }

    /// True if `id` is a literal.
    #[inline]
    pub fn is_literal(&self, id: NodeId) -> bool {
        self.kind(id) == Some(TermKind::Literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use std::sync::Arc;

    #[test]
    fn vocabulary_ids_are_fixed() {
        let d = Dictionary::new();
        assert_eq!(
            d.id_of(&Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
            )),
            Some(vocab::RDF_TYPE)
        );
        assert_eq!(
            d.id_of(&Term::iri(
                "http://www.w3.org/2000/01/rdf-schema#subClassOf"
            )),
            Some(vocab::RDFS_SUB_CLASS_OF)
        );
        assert_eq!(
            d.lookup(vocab::RDFS_RESOURCE),
            Some(Term::iri("http://www.w3.org/2000/01/rdf-schema#Resource"))
        );
        assert_eq!(d.len(), vocab::VOCAB_LEN);
    }

    #[test]
    fn interning_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://example.org/a"));
        let b = d.intern(&Term::iri("http://example.org/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), vocab::VOCAB_LEN + 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://example.org/a"));
        let lit = d.intern(&Term::literal("http://example.org/a"));
        let blank = d.intern(&Term::blank("a"));
        assert_ne!(a, lit);
        assert_ne!(a, blank);
        assert_ne!(lit, blank);
    }

    #[test]
    fn roundtrip() {
        let d = Dictionary::new();
        let terms = vec![
            Term::iri("http://example.org/x"),
            Term::Literal(Literal::lang("bonjour", "fr")),
            Term::Literal(Literal::typed(
                "3",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
            Term::blank("b42"),
        ];
        for t in &terms {
            let id = d.intern(t);
            assert_eq!(d.lookup(id).as_ref(), Some(t));
            assert_eq!(d.id_of(t), Some(id));
        }
    }

    #[test]
    fn kinds_and_literal_flags() {
        let d = Dictionary::new();
        let iri = d.intern(&Term::iri("http://e/a"));
        let lit = d.intern(&Term::literal("x"));
        let blank = d.intern(&Term::blank("b"));
        assert_eq!(d.kind(iri), Some(TermKind::Iri));
        assert_eq!(d.kind(lit), Some(TermKind::Literal));
        assert_eq!(d.kind(blank), Some(TermKind::Blank));
        assert!(d.is_literal(lit));
        assert!(!d.is_literal(iri));
        let table = d.kinds();
        assert!(table.is_literal(lit));
        assert!(!table.is_literal(blank));
        assert_eq!(table.kind(NodeId(9_999_999)), None);
    }

    #[test]
    fn encode_decode_triple() {
        let d = Dictionary::new();
        let tt: TermTriple = (
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("o"),
        );
        let t = d.encode_triple(&tt);
        assert_eq!(d.decode_triple(t), Some(tt));
    }

    #[test]
    fn format_triple_diagnostics() {
        let d = Dictionary::new();
        let t = d.encode_triple(&(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("o"),
        ));
        assert_eq!(d.format_triple(t), "<http://e/s> <http://e/p> \"o\" .");
        // Unknown ids degrade gracefully.
        let bogus = Triple::new(NodeId(u64::MAX - 1), t.p, t.o);
        assert!(d.format_triple(bogus).starts_with('#'));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let d = Arc::new(Dictionary::new());
        let mut handles = Vec::new();
        for thread in 0..8 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..500 {
                    // All threads intern the same 500 terms, racing.
                    let _ = thread;
                    ids.push(d.intern(&Term::iri(format!("http://example.org/{i}"))));
                }
                ids
            }));
        }
        let all: Vec<Vec<NodeId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &all {
            assert_eq!(ids, &all[0], "same term must map to same id on all threads");
        }
        assert_eq!(d.len(), vocab::VOCAB_LEN + 500);
        // Kind table is in lock-step.
        assert_eq!(
            d.kinds().kind(NodeId((d.len() - 1) as u64)),
            Some(TermKind::Iri)
        );
    }
}
