//! The term dictionary: bidirectional, concurrent interning of RDF terms.
//!
//! This is the paper's Input Manager dictionary ("maps the expensive URIs …
//! to Longs"). It is shared by every input source and by the reasoner:
//! multiple parser threads may intern concurrently while rule modules decode
//! ids for tracing.
//!
//! # Architecture: sharded writes, guard-free reads, compaction
//!
//! The dictionary has two halves with different concurrency regimes:
//!
//! * **term → id** is a hash index sharded by term hash into
//!   [`DictConfig::shards`] shards, each behind its own `RwLock`. Producers
//!   interning disjoint terms take disjoint locks; `shards: 1` reproduces
//!   the old global-lock behaviour as an ablation baseline. Each shard's
//!   map keys are `Arc<Term>` clones of the slot payload below, so every
//!   term's string data is materialised exactly once.
//! * **id → (term, kind)** is an append-only *segmented slot table*:
//!   fixed-capacity segments of geometrically growing size, created at
//!   most once (`OnceLock`), plus an atomic published high-water mark.
//!   Ids are dense and a live id never moves, so readers index straight
//!   into a segment without any guard. Each slot packs its state
//!   (empty / live / tombstone) and [`TermKind`] into one `AtomicU64` —
//!   `kind`/`is_literal` and the [`KindTable`] are a single atomic load,
//!   zero locks. The term payload itself is an `Arc<Term>` published
//!   under a per-slot pointer lock in the same idiom as the store's epoch
//!   snapshots: readers hold the lock only for the `Arc` clone, and the
//!   lock is never taken while any intern shard lock is held, so decode
//!   paths complete in bounded time even while interning is write-locked.
//! * **compaction** ([`Dictionary::sweep`]) tombstones non-vocabulary
//!   terms the caller proves dead and pushes their ids onto a free-list
//!   that `intern_slow` reuses. The swept slot drops its payload `Arc`
//!   and its index entry (the only two holders), so the term's bytes are
//!   returned to the allocator; the slot itself stays resident for reuse.
//!   Ids of live terms never change, so stored triples, pending queues
//!   and pinned snapshots stay valid across any number of sweeps.

use crate::hash::{FxBuildHasher, FxHashMap};
use crate::term::{Term, TermKind};
use crate::triple::{TermTriple, Triple};
use crate::vocab::{self, NodeId};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Configuration for a [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictConfig {
    /// Number of term→id index shards (rounded up to a power of two,
    /// minimum 1). Interning threads working on disjoint terms contend
    /// only within a shard; `1` is the old global-lock behaviour, kept as
    /// the ablation/bench baseline.
    pub shards: usize,
}

impl Default for DictConfig {
    fn default() -> Self {
        DictConfig { shards: 16 }
    }
}

/// Base-two log of the first segment's capacity (1024 slots); segment `k`
/// holds `1024 << k` slots, so 33 segments cover every assignable id.
const SEG_SHIFT: usize = 10;
/// Number of segment cells. `(2^33 - 1) * 1024` ids ≈ 8.8 × 10¹² — far
/// beyond any load this process can hold; out-of-range ids resolve to
/// `None` instead of indexing.
const NUM_SEGS: usize = 33;

/// Slot state: never assigned (or mid-assignment).
const STATE_EMPTY: u64 = 0;
/// Slot state: id is live; kind bits are valid.
const STATE_LIVE: u64 = 1;
/// Slot state: swept; the id is on the free-list awaiting reuse.
const STATE_TOMBSTONE: u64 = 2;
const STATE_MASK: u64 = 0b11;
const KIND_SHIFT: u64 = 2;

/// Flat-overhead estimate per index entry (`Arc` pointer + id + bucket
/// slack) for [`Dictionary::bytes_estimate`].
const INDEX_ENTRY_BYTES: usize = 24;
/// Estimated `Arc` header (strong + weak counts) per payload.
const ARC_HEADER_BYTES: usize = 16;

/// One id's cell in the segmented table. `word` is the guard-free half
/// (state + kind in one atomic); `term` is the pointer-published payload.
struct Slot {
    word: AtomicU64,
    term: Mutex<Option<Arc<Term>>>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            word: AtomicU64::new(STATE_EMPTY),
            term: Mutex::new(None),
        }
    }
}

fn pack(kind: TermKind) -> u64 {
    STATE_LIVE | ((kind as u64) << KIND_SHIFT)
}

fn unpack_kind(word: u64) -> TermKind {
    match (word >> KIND_SHIFT) & 0b11 {
        0 => TermKind::Iri,
        1 => TermKind::Literal,
        _ => TermKind::Blank,
    }
}

/// Splits an id into (segment, offset): segment `k` starts at id
/// `(2^k - 1) * 1024` and holds `1024 << k` slots.
fn locate(id: usize) -> (usize, usize) {
    let adj = (id >> SEG_SHIFT) + 1;
    let seg = (usize::BITS - 1 - adj.leading_zeros()) as usize;
    let base = ((1usize << seg) - 1) << SEG_SHIFT;
    (seg, id - base)
}

/// Id allocator: bump pointer plus the free-list sweeps feed.
#[derive(Default)]
struct Allocator {
    next: u64,
    free: Vec<NodeId>,
}

/// Point-in-time dictionary counters (see [`Dictionary::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictStats {
    /// Live interned terms (vocabulary included).
    pub terms: usize,
    /// Swept slots currently awaiting reuse on the free-list.
    pub tombstones: usize,
    /// Estimated resident bytes: term payloads + index entries + slots.
    pub bytes_estimate: usize,
    /// Intern-path shard write-lock conflicts (a `try_write` that had to
    /// block) — contention visibility for the sharding ablation.
    pub shard_conflicts: u64,
    /// Completed [`Dictionary::sweep`] passes.
    pub sweeps: u64,
}

/// What one [`Dictionary::sweep`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Live non-vocabulary slots examined.
    pub scanned: usize,
    /// Slots tombstoned and pushed onto the free-list.
    pub swept: usize,
    /// Live terms remaining after the pass (vocabulary included).
    pub live: usize,
    /// [`Dictionary::bytes_estimate`] entering the pass.
    pub bytes_before: usize,
    /// [`Dictionary::bytes_estimate`] leaving the pass.
    pub bytes_after: usize,
}

/// One shard of the term → id intern index.
type InternShard = RwLock<FxHashMap<Arc<Term>, NodeId>>;

/// A concurrent, bidirectional term ↔ id dictionary.
///
/// * ids are dense (`0, 1, 2, …` in interning order; sweeps recycle dead
///   ids before the bump pointer grows);
/// * ids `0..VOCAB_LEN` are the RDF/RDFS vocabulary ([`crate::vocab`]),
///   never swept;
/// * interning the same term twice returns the same id;
/// * `kind`/`is_literal`/[`KindTable`] are a single atomic load, and
///   `lookup`/`with_term` never touch an intern lock, so decode paths
///   complete in bounded time regardless of writer activity.
pub struct Dictionary {
    /// term → id, sharded by term hash.
    shards: Box<[InternShard]>,
    shard_mask: usize,
    /// id → slot, append-only segments (see module docs).
    segs: [OnceLock<Box<[Slot]>>; NUM_SEGS],
    /// High-water mark: every id below it has been assigned at least once.
    published: AtomicUsize,
    alloc: Mutex<Allocator>,
    hasher: FxBuildHasher,
    live: AtomicUsize,
    tombstones: AtomicUsize,
    bytes: AtomicUsize,
    shard_conflicts: AtomicU64,
    sweeps: AtomicU64,
}

/// Estimated resident bytes of one interned term: string payload, enum,
/// `Arc` header, and the index entry that points at it.
fn term_bytes(term: &Term) -> usize {
    let heap = match term {
        Term::Iri(s) | Term::Blank(s) => s.len(),
        Term::Literal(lit) => {
            lit.lexical.len()
                + match &lit.kind {
                    crate::term::LiteralKind::Plain => 0,
                    crate::term::LiteralKind::Lang(t) | crate::term::LiteralKind::Typed(t) => {
                        t.len()
                    }
                }
        }
    };
    heap + std::mem::size_of::<Term>() + ARC_HEADER_BYTES + INDEX_ENTRY_BYTES
}

impl Dictionary {
    /// Creates a dictionary with the default [`DictConfig`] and the
    /// vocabulary pre-interned at fixed ids.
    pub fn new() -> Self {
        Dictionary::with_config(DictConfig::default())
    }

    /// Creates a dictionary with `config.shards` index shards (rounded up
    /// to a power of two) and the vocabulary pre-interned at fixed ids.
    pub fn with_config(config: DictConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let dict = Dictionary {
            shards: (0..shards)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            shard_mask: shards - 1,
            segs: std::array::from_fn(|_| OnceLock::new()),
            published: AtomicUsize::new(0),
            alloc: Mutex::new(Allocator::default()),
            hasher: FxBuildHasher::default(),
            live: AtomicUsize::new(0),
            tombstones: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            shard_conflicts: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
        };
        for iri in vocab::ALL {
            dict.intern(&Term::iri(*iri));
        }
        debug_assert_eq!(dict.len(), vocab::VOCAB_LEN);
        dict
    }

    /// Number of term→id index shards (after power-of-two rounding).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, hash: u64) -> &RwLock<FxHashMap<Arc<Term>, NodeId>> {
        &self.shards[(hash as usize) & self.shard_mask]
    }

    /// Interns `term`, returning its id (existing or fresh). The term is
    /// cloned once, only when it is actually inserted.
    pub fn intern(&self, term: &Term) -> NodeId {
        let hash = self.hasher.hash_one(term);
        // Fast path: already interned.
        if let Some(&id) = self.shard_of(hash).read().get(term) {
            return id;
        }
        self.intern_slow(std::borrow::Cow::Borrowed(term), hash)
    }

    /// Interns an owned term, avoiding any clone when the term is fresh.
    pub fn intern_owned(&self, term: Term) -> NodeId {
        let hash = self.hasher.hash_one(&term);
        if let Some(&id) = self.shard_of(hash).read().get(&term) {
            return id;
        }
        self.intern_slow(std::borrow::Cow::Owned(term), hash)
    }

    #[cold]
    fn intern_slow(&self, term: std::borrow::Cow<'_, Term>, hash: u64) -> NodeId {
        let shard = self.shard_of(hash);
        let mut map = match shard.try_write() {
            Some(map) => map,
            None => {
                self.shard_conflicts.fetch_add(1, Ordering::Relaxed);
                shard.write()
            }
        };
        // Double-check: another thread may have interned it meanwhile.
        if let Some(&id) = map.get(term.as_ref()) {
            return id;
        }
        // The single materialisation: the slot payload and the index key
        // below share this one allocation.
        let payload = Arc::new(term.into_owned());
        let kind = payload.kind();
        let (id, reused) = {
            let mut alloc = self.alloc.lock();
            match alloc.free.pop() {
                Some(id) => (id, true),
                None => {
                    let id = NodeId(alloc.next);
                    alloc.next += 1;
                    (id, false)
                }
            }
        };
        let slot = self.slot(id.index());
        // Payload before word: a reader that observes LIVE always finds
        // the payload published (or already retired by a later sweep).
        *slot.term.lock() = Some(Arc::clone(&payload));
        slot.word.store(pack(kind), Ordering::Release);
        self.published.fetch_max(id.index() + 1, Ordering::AcqRel);
        self.bytes.fetch_add(
            term_bytes(&payload)
                + if reused {
                    0
                } else {
                    std::mem::size_of::<Slot>()
                },
            Ordering::Relaxed,
        );
        self.live.fetch_add(1, Ordering::Relaxed);
        if reused {
            self.tombstones.fetch_sub(1, Ordering::Relaxed);
        }
        map.insert(payload, id);
        id
    }

    /// The slot for `id`, creating its segment on first touch.
    fn slot(&self, id: usize) -> &Slot {
        let (seg, off) = locate(id);
        let cells = self.segs[seg].get_or_init(|| {
            let cap = 1usize << (SEG_SHIFT + seg);
            (0..cap).map(|_| Slot::new()).collect()
        });
        &cells[off]
    }

    /// The slot for `id` if its segment exists — the read-side accessor:
    /// never allocates, never locks.
    fn slot_if_present(&self, id: NodeId) -> Option<&Slot> {
        let (seg, off) = locate(id.index());
        self.segs.get(seg)?.get().map(|cells| &cells[off])
    }

    /// Returns the id of `term` if it has been interned.
    pub fn id_of(&self, term: &Term) -> Option<NodeId> {
        let hash = self.hasher.hash_one(term);
        self.shard_of(hash).read().get(term).copied()
    }

    /// The payload of a live id: one per-slot pointer-clone lock, no
    /// intern or shard lock (see the module docs).
    fn payload(&self, id: NodeId) -> Option<Arc<Term>> {
        let slot = self.slot_if_present(id)?;
        if slot.word.load(Ordering::Acquire) & STATE_MASK != STATE_LIVE {
            return None;
        }
        slot.term.lock().clone()
    }

    /// Returns a clone of the term with id `id`.
    pub fn lookup(&self, id: NodeId) -> Option<Term> {
        self.payload(id).map(|term| (*term).clone())
    }

    /// Runs `f` on the term with id `id` without cloning its string data.
    pub fn with_term<R>(&self, id: NodeId, f: impl FnOnce(&Term) -> R) -> Option<R> {
        self.payload(id).map(|term| f(&term))
    }

    /// The kind (IRI / literal / blank) of `id` — a single atomic load.
    pub fn kind(&self, id: NodeId) -> Option<TermKind> {
        let word = self.slot_if_present(id)?.word.load(Ordering::Acquire);
        (word & STATE_MASK == STATE_LIVE).then(|| unpack_kind(word))
    }

    /// True if `id` is an interned literal.
    pub fn is_literal(&self, id: NodeId) -> bool {
        self.kind(id) == Some(TermKind::Literal)
    }

    /// A handle over the kind table, for batch classification in hot rule
    /// loops. Each query is one atomic load — the handle holds no lock.
    pub fn kinds(&self) -> KindTable<'_> {
        KindTable { dict: self }
    }

    /// Number of live interned terms (including the vocabulary).
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// True if only… never: the vocabulary is always present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the largest id ever assigned (tombstones included): the
    /// dense-id bound. `len() == high_water()` exactly when no slot is
    /// currently tombstoned.
    pub fn high_water(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// Estimated resident bytes: term payloads (materialised once each),
    /// index entries, and slot cells. Maintained incrementally; sweeps
    /// subtract the payload and index share of each reclaimed term (slot
    /// cells stay resident for reuse and are never subtracted).
    pub fn bytes_estimate(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Point-in-time counters for stats plumbing.
    pub fn stats(&self) -> DictStats {
        DictStats {
            terms: self.len(),
            tombstones: self.tombstones.load(Ordering::Relaxed),
            bytes_estimate: self.bytes_estimate(),
            shard_conflicts: self.shard_conflicts.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
        }
    }

    /// Compacts the dictionary: every **live, non-vocabulary** id for
    /// which `live` answers `false` is tombstoned — its index entry and
    /// payload `Arc` are dropped (reclaiming the term's bytes) and its id
    /// goes onto the free-list for `intern` to reuse. Ids for which
    /// `live` answers `true` are untouched: their `lookup`/`kind` results
    /// are identical before and after the pass.
    ///
    /// The caller owns the liveness proof. The engine runs sweeps under
    /// its quiescent-store gate with `live` = "referenced by the store",
    /// which is sound because no intern-and-insert can be mid-flight
    /// there; a standalone caller must equally guarantee that no term it
    /// reports dead is concurrently being re-interned for use.
    pub fn sweep(&self, live: impl Fn(NodeId) -> bool) -> SweepOutcome {
        let bytes_before = self.bytes_estimate();
        let high = self.high_water();
        let mut scanned = 0usize;
        let mut freed: Vec<NodeId> = Vec::new();
        for raw in vocab::VOCAB_LEN..high {
            let id = NodeId(raw as u64);
            let Some(slot) = self.slot_if_present(id) else {
                continue;
            };
            if slot.word.load(Ordering::Acquire) & STATE_MASK != STATE_LIVE {
                continue;
            }
            scanned += 1;
            if live(id) {
                continue;
            }
            let Some(payload) = slot.term.lock().clone() else {
                continue;
            };
            let hash = self.hasher.hash_one(&*payload);
            let mut map = self.shard_of(hash).write();
            // Re-check under the shard lock: only this id's own entry may
            // be removed (a racing sweep or re-intern may have moved on).
            if map.get(&*payload) != Some(&id) {
                continue;
            }
            map.remove(&*payload);
            // Index entry gone: no interner can hand this id out any
            // more. Retire the slot while still holding the shard lock.
            slot.word.store(STATE_TOMBSTONE, Ordering::Release);
            *slot.term.lock() = None;
            drop(map);
            self.bytes
                .fetch_sub(term_bytes(&payload), Ordering::Relaxed);
            self.live.fetch_sub(1, Ordering::Relaxed);
            self.tombstones.fetch_add(1, Ordering::Relaxed);
            freed.push(id);
        }
        let swept = freed.len();
        if swept > 0 {
            self.alloc.lock().free.extend(freed);
        }
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        SweepOutcome {
            scanned,
            swept,
            live: self.len(),
            bytes_before,
            bytes_after: self.bytes_estimate(),
        }
    }

    /// Holds the intern write lock of the shard that owns `term`, blocking
    /// every intern routed there until the guard drops. A diagnostic/test
    /// hook (mirroring `ShardedStore::write_shard`): the concurrency suite
    /// uses it to pin that `lookup`/`kind` complete in bounded time while
    /// interning is write-locked.
    pub fn lock_intern_shard(&self, term: &Term) -> InternShardGuard<'_> {
        let hash = self.hasher.hash_one(term);
        InternShardGuard {
            _guard: self.shard_of(hash).write(),
        }
    }

    /// Encodes a decoded triple.
    pub fn encode_triple(&self, t: &TermTriple) -> Triple {
        Triple {
            s: self.intern(&t.0),
            p: self.intern(&t.1),
            o: self.intern(&t.2),
        }
    }

    /// Encodes an owned decoded triple (no term clones on fresh terms).
    pub fn encode_triple_owned(&self, t: TermTriple) -> Triple {
        Triple {
            s: self.intern_owned(t.0),
            p: self.intern_owned(t.1),
            o: self.intern_owned(t.2),
        }
    }

    /// Decodes a triple back to terms; `None` if any id is unknown.
    pub fn decode_triple(&self, t: Triple) -> Option<TermTriple> {
        Some((self.lookup(t.s)?, self.lookup(t.p)?, self.lookup(t.o)?))
    }

    /// Formats a triple in N-Triples-like syntax for diagnostics.
    pub fn format_triple(&self, t: Triple) -> String {
        let part = |id: NodeId| {
            self.lookup(id)
                .map(|term| term.to_string())
                .unwrap_or_else(|| format!("{id}"))
        };
        format!("{} {} {} .", part(t.s), part(t.p), part(t.o))
    }
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary::new()
    }
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary")
            .field("len", &self.len())
            .finish()
    }
}

/// Holds one intern shard's write lock (see
/// [`Dictionary::lock_intern_shard`]).
pub struct InternShardGuard<'a> {
    _guard: RwLockWriteGuard<'a, FxHashMap<Arc<Term>, NodeId>>,
}

/// Handle over the term-kind table (see [`Dictionary::kinds`]). Queries
/// are single atomic loads against the segmented slot table — the handle
/// holds no lock, so it can be kept across arbitrarily long rule loops
/// without blocking writers.
pub struct KindTable<'a> {
    dict: &'a Dictionary,
}

impl KindTable<'_> {
    /// The kind of `id`, if known.
    #[inline]
    pub fn kind(&self, id: NodeId) -> Option<TermKind> {
        self.dict.kind(id)
    }

    /// True if `id` is a literal.
    #[inline]
    pub fn is_literal(&self, id: NodeId) -> bool {
        self.kind(id) == Some(TermKind::Literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use std::sync::Arc;

    #[test]
    fn vocabulary_ids_are_fixed() {
        let d = Dictionary::new();
        assert_eq!(
            d.id_of(&Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
            )),
            Some(vocab::RDF_TYPE)
        );
        assert_eq!(
            d.id_of(&Term::iri(
                "http://www.w3.org/2000/01/rdf-schema#subClassOf"
            )),
            Some(vocab::RDFS_SUB_CLASS_OF)
        );
        assert_eq!(
            d.lookup(vocab::RDFS_RESOURCE),
            Some(Term::iri("http://www.w3.org/2000/01/rdf-schema#Resource"))
        );
        assert_eq!(d.len(), vocab::VOCAB_LEN);
    }

    #[test]
    fn interning_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://example.org/a"));
        let b = d.intern(&Term::iri("http://example.org/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), vocab::VOCAB_LEN + 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://example.org/a"));
        let lit = d.intern(&Term::literal("http://example.org/a"));
        let blank = d.intern(&Term::blank("a"));
        assert_ne!(a, lit);
        assert_ne!(a, blank);
        assert_ne!(lit, blank);
    }

    #[test]
    fn roundtrip() {
        let d = Dictionary::new();
        let terms = vec![
            Term::iri("http://example.org/x"),
            Term::Literal(Literal::lang("bonjour", "fr")),
            Term::Literal(Literal::typed(
                "3",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
            Term::blank("b42"),
        ];
        for t in &terms {
            let id = d.intern(t);
            assert_eq!(d.lookup(id).as_ref(), Some(t));
            assert_eq!(d.id_of(t), Some(id));
        }
    }

    #[test]
    fn kinds_and_literal_flags() {
        let d = Dictionary::new();
        let iri = d.intern(&Term::iri("http://e/a"));
        let lit = d.intern(&Term::literal("x"));
        let blank = d.intern(&Term::blank("b"));
        assert_eq!(d.kind(iri), Some(TermKind::Iri));
        assert_eq!(d.kind(lit), Some(TermKind::Literal));
        assert_eq!(d.kind(blank), Some(TermKind::Blank));
        assert!(d.is_literal(lit));
        assert!(!d.is_literal(iri));
        let table = d.kinds();
        assert!(table.is_literal(lit));
        assert!(!table.is_literal(blank));
        assert_eq!(table.kind(NodeId(9_999_999)), None);
    }

    #[test]
    fn encode_decode_triple() {
        let d = Dictionary::new();
        let tt: TermTriple = (
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("o"),
        );
        let t = d.encode_triple(&tt);
        assert_eq!(d.decode_triple(t), Some(tt));
    }

    #[test]
    fn format_triple_diagnostics() {
        let d = Dictionary::new();
        let t = d.encode_triple(&(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("o"),
        ));
        assert_eq!(d.format_triple(t), "<http://e/s> <http://e/p> \"o\" .");
        // Unknown ids degrade gracefully.
        let bogus = Triple::new(NodeId(u64::MAX - 1), t.p, t.o);
        assert!(d.format_triple(bogus).starts_with('#'));
    }

    #[test]
    fn segment_locate_covers_the_geometric_layout() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        // Every id maps to an in-capacity offset and bases chain densely.
        let mut next_base = 0usize;
        for seg in 0..8 {
            let base = ((1usize << seg) - 1) << SEG_SHIFT;
            assert_eq!(base, next_base);
            next_base = base + (1024 << seg);
            assert_eq!(locate(base), (seg, 0));
            assert_eq!(locate(next_base - 1), (seg, (1024 << seg) - 1));
        }
    }

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(
            Dictionary::with_config(DictConfig { shards: 0 }).shard_count(),
            1
        );
        assert_eq!(
            Dictionary::with_config(DictConfig { shards: 1 }).shard_count(),
            1
        );
        assert_eq!(
            Dictionary::with_config(DictConfig { shards: 3 }).shard_count(),
            4
        );
        assert_eq!(Dictionary::new().shard_count(), 16);
    }

    /// Satellite pin: the index key shares the slot payload's allocation,
    /// so each term's string data is resident exactly once. Double
    /// materialisation (the old `terms` + `index`-key layout) would at
    /// least double the per-term growth.
    #[test]
    fn bytes_estimate_counts_each_term_once() {
        let d = Dictionary::new();
        let base = d.bytes_estimate();
        assert!(base > 0, "vocabulary is accounted");
        let payload = "x".repeat(1_000);
        let n = 100usize;
        let mut heap = 0usize;
        for i in 0..n {
            let iri = format!("http://e/{payload}/{i}");
            heap += iri.len();
            d.intern(&Term::iri(iri));
        }
        let grown = d.bytes_estimate() - base;
        assert!(grown >= heap, "estimate must cover the string payloads");
        let overhead = n
            * (std::mem::size_of::<Term>()
                + ARC_HEADER_BYTES
                + INDEX_ENTRY_BYTES
                + std::mem::size_of::<Slot>());
        assert!(
            grown <= heap + overhead,
            "each term is materialised once: grew {grown}, singly-stored bound {}",
            heap + overhead
        );
    }

    #[test]
    fn sweep_tombstones_reclaims_and_reuses_ids() {
        let d = Dictionary::new();
        let keep = d.intern(&Term::iri("http://e/keep"));
        let drop1 = d.intern(&Term::iri("http://e/drop-1"));
        let drop2 = d.intern(&Term::iri("http://e/drop-2"));
        let bytes_full = d.bytes_estimate();
        let outcome = d.sweep(|id| id == keep);
        assert_eq!(outcome.scanned, 3);
        assert_eq!(outcome.swept, 2);
        assert_eq!(outcome.live, vocab::VOCAB_LEN + 1);
        assert_eq!(outcome.bytes_before, bytes_full);
        assert!(outcome.bytes_after < bytes_full);
        // Live ids are untouched; dead ids resolve to nothing.
        assert_eq!(d.lookup(keep), Some(Term::iri("http://e/keep")));
        assert_eq!(d.kind(keep), Some(TermKind::Iri));
        assert_eq!(d.lookup(drop1), None);
        assert_eq!(d.kind(drop2), None);
        assert_eq!(d.id_of(&Term::iri("http://e/drop-1")), None);
        assert_eq!(d.stats().tombstones, 2);
        // The free-list feeds reuse: fresh interns take the dead ids and
        // the high-water mark does not grow.
        let high = d.high_water();
        let fresh1 = d.intern(&Term::literal("fresh-1"));
        let fresh2 = d.intern(&Term::iri("http://e/fresh-2"));
        let mut recycled = vec![fresh1, fresh2];
        recycled.sort_unstable();
        let mut expected = vec![drop1, drop2];
        expected.sort_unstable();
        assert_eq!(recycled, expected);
        assert_eq!(d.high_water(), high);
        assert_eq!(d.stats().tombstones, 0);
        // A reused slot's kind follows its new incarnation atomically.
        assert_eq!(d.kind(fresh1), Some(TermKind::Literal));
        assert_eq!(d.lookup(fresh1), Some(Term::literal("fresh-1")));
    }

    #[test]
    fn sweep_never_touches_the_vocabulary() {
        let d = Dictionary::new();
        let outcome = d.sweep(|_| false);
        assert_eq!(outcome.swept, 0);
        assert_eq!(d.len(), vocab::VOCAB_LEN);
        assert_eq!(
            d.lookup(vocab::RDF_TYPE),
            Some(Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
        );
        assert_eq!(d.stats().sweeps, 1);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        // The battery runs at every shard width the proptests sweep:
        // 1 (the global-lock ablation baseline), 2, 4 and 16.
        for shards in [1usize, 2, 4, 16] {
            let d = Arc::new(Dictionary::with_config(DictConfig { shards }));
            let mut handles = Vec::new();
            for thread in 0..8 {
                let d = Arc::clone(&d);
                handles.push(std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..500 {
                        // All threads intern the same 500 terms, racing —
                        // plus a disjoint per-thread tail below.
                        ids.push(d.intern(&Term::iri(format!("http://example.org/{i}"))));
                    }
                    let mut own = Vec::new();
                    for i in 0..50 {
                        own.push(
                            d.intern_owned(Term::iri(format!("http://example.org/t{thread}/{i}"))),
                        );
                    }
                    (ids, own)
                }));
            }
            let all: Vec<(Vec<NodeId>, Vec<NodeId>)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (ids, _) in &all {
                assert_eq!(
                    ids, &all[0].0,
                    "same term must map to same id on all threads ({shards} shards)"
                );
            }
            // Dense ids: shared + disjoint interns tile 0..len exactly.
            let expected_len = vocab::VOCAB_LEN + 500 + 8 * 50;
            assert_eq!(d.len(), expected_len, "{shards} shards");
            assert_eq!(d.high_water(), expected_len, "{shards} shards");
            let mut every: Vec<NodeId> = all
                .iter()
                .flat_map(|(ids, own)| ids.iter().chain(own).copied())
                .collect();
            every.sort_unstable();
            every.dedup();
            assert_eq!(every.len(), 500 + 8 * 50, "{shards} shards");
            // Kind table is in lock-step with interning.
            let table = d.kinds();
            for &id in &every {
                assert_eq!(table.kind(id), Some(TermKind::Iri), "{shards} shards");
            }
        }
    }

    #[test]
    fn lookups_do_not_block_behind_an_intern_write_lock() {
        // Single shard: the one guard below write-locks the *entire*
        // intern path, yet id→term/kind reads still complete.
        let d = Arc::new(Dictionary::with_config(DictConfig { shards: 1 }));
        let id = d.intern(&Term::iri("http://e/pinned"));
        let guard = d.lock_intern_shard(&Term::iri("http://e/any"));
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn({
            let d = Arc::clone(&d);
            move || {
                tx.send((d.lookup(id), d.kind(id), d.kinds().kind(vocab::RDF_TYPE)))
                    .unwrap();
            }
        });
        let (term, kind, vocab_kind) = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("lookup/kind blocked behind a held intern write lock");
        assert_eq!(term, Some(Term::iri("http://e/pinned")));
        assert_eq!(kind, Some(TermKind::Iri));
        assert_eq!(vocab_kind, Some(TermKind::Iri));
        drop(guard);
        reader.join().unwrap();
    }
}
