//! RDF data model for the Slider reasoner.
//!
//! This crate is the lowest substrate of the reproduction: it provides
//! the term/triple representation shared by every other crate.
//!
//! The design follows §2 of the paper:
//!
//! * The **input manager** "registers \[new triples\] into a dictionary that
//!   maps the expensive URIs (as they introduce overheads during comparison
//!   computation) to Longs". [`Dictionary`] is that dictionary: every term
//!   (IRI, literal or blank node) is interned once and afterwards referenced
//!   by a dense [`NodeId`], so rule joins compare 8-byte integers instead of
//!   strings.
//! * The RDF/RDFS vocabulary that the ρdf and RDFS rules match on is
//!   pre-interned at **fixed ids** ([`vocab`]), so rule implementations are
//!   `const`-comparing hot loops.
//!
//! A [`Triple`] is three [`NodeId`]s; [`Term`] is the decoded, human-readable
//! form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dict;
pub mod hash;
pub mod term;
pub mod triple;
pub mod vocab;

pub use dict::{DictConfig, DictStats, Dictionary, SweepOutcome};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use term::{Literal, LiteralKind, Term, TermKind};
pub use triple::{TermTriple, Triple};
pub use vocab::NodeId;
