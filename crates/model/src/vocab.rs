//! The RDF/RDFS vocabulary, pre-interned at fixed [`NodeId`]s.
//!
//! Rule implementations (crate `slider-rules`) match triples against these
//! constants millions of times; fixing their ids at dictionary construction
//! time turns every vocabulary test into an integer comparison.
//!
//! The id assignment is an invariant of
//! [`Dictionary::new`](crate::Dictionary::new): the terms in [`ALL`] are
//! interned in order, so
//! `ALL[i]` has id `i`. A unit test in `dict.rs` pins this.

use std::fmt;

/// A dictionary-encoded term identifier.
///
/// Ids are dense: the dictionary assigns `0, 1, 2, …` in interning order,
/// with ids `0..ALL.len()` reserved for the vocabulary below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The raw id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// RDF namespace.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// RDFS namespace.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// XSD namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

macro_rules! vocab {
    ($(($const_name:ident, $idx:expr, $iri:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub const $const_name: NodeId = NodeId($idx);
        )*

        /// Every vocabulary IRI, in id order: `ALL[i]` is the IRI of `NodeId(i)`.
        pub const ALL: &[&str] = &[$($iri),*];
    };
}

vocab! {
    (RDF_TYPE, 0, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "`rdf:type`");
    (RDFS_SUB_CLASS_OF, 1, "http://www.w3.org/2000/01/rdf-schema#subClassOf", "`rdfs:subClassOf`");
    (RDFS_SUB_PROPERTY_OF, 2, "http://www.w3.org/2000/01/rdf-schema#subPropertyOf", "`rdfs:subPropertyOf`");
    (RDFS_DOMAIN, 3, "http://www.w3.org/2000/01/rdf-schema#domain", "`rdfs:domain`");
    (RDFS_RANGE, 4, "http://www.w3.org/2000/01/rdf-schema#range", "`rdfs:range`");
    (RDFS_RESOURCE, 5, "http://www.w3.org/2000/01/rdf-schema#Resource", "`rdfs:Resource`");
    (RDFS_LITERAL, 6, "http://www.w3.org/2000/01/rdf-schema#Literal", "`rdfs:Literal`");
    (RDFS_CLASS, 7, "http://www.w3.org/2000/01/rdf-schema#Class", "`rdfs:Class`");
    (RDF_PROPERTY, 8, "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property", "`rdf:Property`");
    (RDFS_DATATYPE, 9, "http://www.w3.org/2000/01/rdf-schema#Datatype", "`rdfs:Datatype`");
    (RDFS_CONTAINER_MEMBERSHIP_PROPERTY, 10, "http://www.w3.org/2000/01/rdf-schema#ContainerMembershipProperty", "`rdfs:ContainerMembershipProperty`");
    (RDFS_MEMBER, 11, "http://www.w3.org/2000/01/rdf-schema#member", "`rdfs:member`");
    (RDFS_CONTAINER, 12, "http://www.w3.org/2000/01/rdf-schema#Container", "`rdfs:Container`");
    (RDFS_SEE_ALSO, 13, "http://www.w3.org/2000/01/rdf-schema#seeAlso", "`rdfs:seeAlso`");
    (RDFS_IS_DEFINED_BY, 14, "http://www.w3.org/2000/01/rdf-schema#isDefinedBy", "`rdfs:isDefinedBy`");
    (RDFS_COMMENT, 15, "http://www.w3.org/2000/01/rdf-schema#comment", "`rdfs:comment`");
    (RDFS_LABEL, 16, "http://www.w3.org/2000/01/rdf-schema#label", "`rdfs:label`");
    (RDF_SUBJECT, 17, "http://www.w3.org/1999/02/22-rdf-syntax-ns#subject", "`rdf:subject`");
    (RDF_PREDICATE, 18, "http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate", "`rdf:predicate`");
    (RDF_OBJECT, 19, "http://www.w3.org/1999/02/22-rdf-syntax-ns#object", "`rdf:object`");
    (RDF_STATEMENT, 20, "http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement", "`rdf:Statement`");
    (RDF_FIRST, 21, "http://www.w3.org/1999/02/22-rdf-syntax-ns#first", "`rdf:first`");
    (RDF_REST, 22, "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest", "`rdf:rest`");
    (RDF_NIL, 23, "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil", "`rdf:nil`");
    (RDF_LIST, 24, "http://www.w3.org/1999/02/22-rdf-syntax-ns#List", "`rdf:List`");
    (RDF_BAG, 25, "http://www.w3.org/1999/02/22-rdf-syntax-ns#Bag", "`rdf:Bag`");
    (RDF_SEQ, 26, "http://www.w3.org/1999/02/22-rdf-syntax-ns#Seq", "`rdf:Seq`");
    (RDF_ALT, 27, "http://www.w3.org/1999/02/22-rdf-syntax-ns#Alt", "`rdf:Alt`");
    (RDF_VALUE, 28, "http://www.w3.org/1999/02/22-rdf-syntax-ns#value", "`rdf:value`");
    (RDF_XML_LITERAL, 29, "http://www.w3.org/1999/02/22-rdf-syntax-ns#XMLLiteral", "`rdf:XMLLiteral`");
    (XSD_STRING, 30, "http://www.w3.org/2001/XMLSchema#string", "`xsd:string`");
    (XSD_INTEGER, 31, "http://www.w3.org/2001/XMLSchema#integer", "`xsd:integer`");
    (XSD_DECIMAL, 32, "http://www.w3.org/2001/XMLSchema#decimal", "`xsd:decimal`");
    (XSD_BOOLEAN, 33, "http://www.w3.org/2001/XMLSchema#boolean", "`xsd:boolean`");
    (XSD_DOUBLE, 34, "http://www.w3.org/2001/XMLSchema#double", "`xsd:double`");
    (XSD_DATE_TIME, 35, "http://www.w3.org/2001/XMLSchema#dateTime", "`xsd:dateTime`");
    (OWL_SAME_AS, 36, "http://www.w3.org/2002/07/owl#sameAs", "`owl:sameAs`");
    (OWL_INVERSE_OF, 37, "http://www.w3.org/2002/07/owl#inverseOf", "`owl:inverseOf`");
    (OWL_TRANSITIVE_PROPERTY, 38, "http://www.w3.org/2002/07/owl#TransitiveProperty", "`owl:TransitiveProperty`");
    (OWL_SYMMETRIC_PROPERTY, 39, "http://www.w3.org/2002/07/owl#SymmetricProperty", "`owl:SymmetricProperty`");
    (OWL_FUNCTIONAL_PROPERTY, 40, "http://www.w3.org/2002/07/owl#FunctionalProperty", "`owl:FunctionalProperty`");
    (OWL_INVERSE_FUNCTIONAL_PROPERTY, 41, "http://www.w3.org/2002/07/owl#InverseFunctionalProperty", "`owl:InverseFunctionalProperty`");
    (OWL_EQUIVALENT_CLASS, 42, "http://www.w3.org/2002/07/owl#equivalentClass", "`owl:equivalentClass`");
    (OWL_EQUIVALENT_PROPERTY, 43, "http://www.w3.org/2002/07/owl#equivalentProperty", "`owl:equivalentProperty`");
    (OWL_CLASS, 44, "http://www.w3.org/2002/07/owl#Class", "`owl:Class`");
    (OWL_THING, 45, "http://www.w3.org/2002/07/owl#Thing", "`owl:Thing`");
}

/// OWL namespace.
pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";

/// Number of pre-interned vocabulary terms.
pub const VOCAB_LEN: usize = ALL.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_match_positions() {
        assert_eq!(ALL[RDF_TYPE.index()], RDF_NS.to_owned() + "type");
        assert_eq!(
            ALL[RDFS_SUB_CLASS_OF.index()],
            RDFS_NS.to_owned() + "subClassOf"
        );
        assert_eq!(ALL[RDFS_MEMBER.index()], RDFS_NS.to_owned() + "member");
        assert_eq!(ALL[XSD_DATE_TIME.index()], XSD_NS.to_owned() + "dateTime");
    }

    #[test]
    fn all_distinct() {
        let mut sorted: Vec<&str> = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "vocabulary IRIs must be unique");
    }

    #[test]
    fn vocab_len() {
        assert_eq!(VOCAB_LEN, 46);
    }

    #[test]
    fn owl_terms_present() {
        assert_eq!(ALL[OWL_SAME_AS.index()], OWL_NS.to_owned() + "sameAs");
        assert_eq!(ALL[OWL_THING.index()], OWL_NS.to_owned() + "Thing");
    }
}
