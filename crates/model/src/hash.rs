//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The store and dictionary hash [`NodeId`](crate::NodeId)s billions of times
//! during materialisation; SipHash (the `std` default) dominates profiles
//! there. This is the multiplicative "Fx" hash used by Firefox and rustc,
//! reimplemented here (≈30 lines) instead of pulling in a dependency —
//! HashDoS resistance is irrelevant for an in-process reasoner.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, the same constant rustc-hash uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiplicative hasher. See the module docs.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time; the remainder is zero-padded.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        let a = hash_of(|h| h.write_u64(42));
        let b = hash_of(|h| h.write_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_values() {
        let a = hash_of(|h| h.write_u64(1));
        let b = hash_of(|h| h.write_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn distinguishes_padded_bytes() {
        // A trailing-zero string must not collide with its zero-padded form.
        let a = hash_of(|h| h.write(b"ab"));
        let b = hash_of(|h| h.write(b"ab\0"));
        assert_ne!(a, b);
    }

    #[test]
    fn long_byte_strings() {
        let a = hash_of(|h| h.write(b"http://example.org/vocab#Property"));
        let b = hash_of(|h| h.write(b"http://example.org/vocab#Propertz"));
        assert_ne!(a, b);
    }

    #[test]
    fn map_smoke() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m[&777], 1554);
    }

    #[test]
    fn set_smoke() {
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        assert!(s.contains("a"));
    }
}
