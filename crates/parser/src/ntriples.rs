//! A streaming N-Triples parser (W3C RDF 1.1 N-Triples).
//!
//! N-Triples is line-oriented: each non-blank, non-comment line holds
//! exactly one `subject predicate object .` statement. The parser reads the
//! input line by line and yields decoded [`TermTriple`]s, so arbitrarily
//! large documents parse in constant memory.

use crate::error::ParseError;
use slider_model::{Literal, Term, TermTriple};
use std::io::BufRead;

/// Streaming N-Triples parser over any `BufRead`.
pub struct NTriplesParser<R> {
    reader: R,
    line_no: usize,
    buf: String,
    done: bool,
}

impl<R: BufRead> NTriplesParser<R> {
    /// Creates a parser reading from `reader`.
    pub fn new(reader: R) -> Self {
        NTriplesParser {
            reader,
            line_no: 0,
            buf: String::new(),
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for NTriplesParser<R> {
    type Item = Result<TermTriple, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(ParseError::io(self.line_no, &e)));
                }
            }
            let line = self.buf.trim_end_matches(['\n', '\r']);
            let mut scan = Scanner::new(line, self.line_no);
            scan.skip_ws();
            if scan.at_end() || scan.peek() == Some('#') {
                continue; // blank line or comment
            }
            let result = parse_statement(&mut scan);
            if result.is_err() {
                // One malformed line does not poison the iterator; the
                // caller decides whether to stop. But record it.
                return Some(result);
            }
            return Some(result);
        }
    }
}

fn parse_statement(scan: &mut Scanner<'_>) -> Result<TermTriple, ParseError> {
    let s = parse_subject(scan)?;
    scan.require_ws()?;
    scan.skip_ws();
    let p = parse_predicate(scan)?;
    scan.require_ws()?;
    scan.skip_ws();
    let o = parse_object(scan)?;
    scan.skip_ws();
    scan.expect('.')?;
    scan.skip_ws();
    if let Some(c) = scan.peek() {
        if c == '#' {
            // trailing comment is fine
        } else {
            return Err(scan.error(format!("unexpected trailing character {c:?} after '.'")));
        }
    }
    Ok((s, p, o))
}

fn parse_subject(scan: &mut Scanner<'_>) -> Result<Term, ParseError> {
    match scan.peek() {
        Some('<') => Ok(Term::Iri(scan.parse_iriref()?)),
        Some('_') => Ok(Term::Blank(scan.parse_blank_label()?)),
        Some(c) => Err(scan.error(format!(
            "expected IRI or blank node as subject, found {c:?}"
        ))),
        None => Err(scan.error("unexpected end of line while reading subject")),
    }
}

fn parse_predicate(scan: &mut Scanner<'_>) -> Result<Term, ParseError> {
    match scan.peek() {
        Some('<') => Ok(Term::Iri(scan.parse_iriref()?)),
        Some(c) => Err(scan.error(format!("expected IRI as predicate, found {c:?}"))),
        None => Err(scan.error("unexpected end of line while reading predicate")),
    }
}

fn parse_object(scan: &mut Scanner<'_>) -> Result<Term, ParseError> {
    match scan.peek() {
        Some('<') => Ok(Term::Iri(scan.parse_iriref()?)),
        Some('_') => Ok(Term::Blank(scan.parse_blank_label()?)),
        Some('"') => Ok(Term::Literal(scan.parse_literal()?)),
        Some(c) => Err(scan.error(format!(
            "expected IRI, blank node or literal as object, found {c:?}"
        ))),
        None => Err(scan.error("unexpected end of line while reading object")),
    }
}

/// Character-level scanner over a single line, with column tracking.
pub(crate) struct Scanner<'a> {
    rest: &'a str,
    line: usize,
    column: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(line_text: &'a str, line: usize) -> Self {
        Scanner {
            rest: line_text,
            line,
            column: 1,
        }
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    pub(crate) fn at_end(&self) -> bool {
        self.rest.is_empty()
    }

    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.rest.chars().next()?;
        self.rest = &self.rest[c.len_utf8()..];
        self.column += 1;
        Some(c)
    }

    pub(crate) fn expect(&mut self, want: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(format!("expected {want:?}, found {c:?}"))),
            None => Err(self.error(format!("expected {want:?}, found end of line"))),
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    /// At least one whitespace character must separate triple components.
    pub(crate) fn require_ws(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(' ') | Some('\t') => Ok(()),
            _ => Err(self.error("expected whitespace between triple components")),
        }
    }

    /// Parses `<iri>` with `\uXXXX`/`\UXXXXXXXX` escapes; returns the IRI
    /// without the angle brackets.
    pub(crate) fn parse_iriref(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(iri),
                Some('\\') => match self.bump() {
                    Some('u') => iri.push(self.parse_hex_escape(4)?),
                    Some('U') => iri.push(self.parse_hex_escape(8)?),
                    Some(c) => return Err(self.error(format!("invalid IRI escape '\\{c}'"))),
                    None => return Err(self.error("unterminated IRI escape")),
                },
                Some(c)
                    if c == ' '
                        || c == '<'
                        || c == '"'
                        || c == '{'
                        || c == '}'
                        || c == '|'
                        || c == '^'
                        || c == '`'
                        || (c as u32) <= 0x20 =>
                {
                    return Err(
                        self.error(format!("character {c:?} must be escaped inside an IRI"))
                    );
                }
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI (missing '>')")),
            }
        }
    }

    /// Parses `_:label`; returns the label.
    pub(crate) fn parse_blank_label(&mut self) -> Result<String, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        // PN_CHARS with a permissive first-char rule (digits allowed, as in
        // N-Triples).
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // '.' may not terminate a label; the grammar allows medial
                // dots — including runs of them (`_:a..b`) — so keep a dot
                // only if a label character follows the whole run.
                if c == '.' {
                    let mut iter = self.rest.chars();
                    iter.next(); // the current '.'
                    let keeps = loop {
                        match iter.next() {
                            Some('.') => {}
                            Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => break true,
                            _ => break false,
                        }
                    };
                    if !keeps {
                        break;
                    }
                }
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(label)
    }

    /// Parses a quoted literal with optional `@lang` or `^^<datatype>`.
    pub(crate) fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        let lexical = self.parse_quoted_string()?;
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut tag = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        tag.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return Err(self.error("empty language tag"));
                }
                Ok(Literal::lang(lexical, tag))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let dt = self.parse_iriref()?;
                Ok(Literal::typed(lexical, dt))
            }
            _ => Ok(Literal::plain(lexical)),
        }
    }

    /// Parses `"…"` decoding ECHAR and UCHAR escapes.
    pub(crate) fn parse_quoted_string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => out.push(self.parse_escape_char()?),
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    pub(crate) fn parse_escape_char(&mut self) -> Result<char, ParseError> {
        match self.bump() {
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{8}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.parse_hex_escape(4),
            Some('U') => self.parse_hex_escape(8),
            Some(c) => Err(self.error(format!("invalid escape '\\{c}'"))),
            None => Err(self.error("unterminated escape sequence")),
        }
    }

    fn parse_hex_escape(&mut self, digits: u32) -> Result<char, ParseError> {
        let mut value: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.error("unterminated \\u escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.error(format!("invalid hex digit {c:?} in \\u escape")))?;
            value = value * 16 + d;
        }
        char::from_u32(value)
            .ok_or_else(|| self.error(format!("\\u escape U+{value:04X} is not a valid character")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(doc: &str) -> Vec<TermTriple> {
        NTriplesParser::new(doc.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    fn parse_err(doc: &str) -> ParseError {
        NTriplesParser::new(doc.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err()
    }

    #[test]
    fn simple_triple() {
        let ts = parse_all("<http://e/s> <http://e/p> <http://e/o> .\n");
        assert_eq!(
            ts,
            vec![(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::iri("http://e/o")
            )]
        );
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let ts = parse_all(
            "# a comment\n\n   \n<http://e/s> <http://e/p> <http://e/o> . # trailing\n# end\n",
        );
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn blank_nodes_both_positions() {
        let ts = parse_all("_:a <http://e/p> _:b1.c .\n");
        assert_eq!(ts[0].0, Term::blank("a"));
        assert_eq!(ts[0].2, Term::blank("b1.c"));
    }

    #[test]
    fn blank_node_label_does_not_eat_final_dot() {
        let ts = parse_all("_:a <http://e/p> _:b .\n");
        assert_eq!(ts[0].2, Term::blank("b"));
        // No space before the dot: label must stop before '.'.
        let ts = parse_all("_:a <http://e/p> _:b.\n");
        assert_eq!(ts[0].2, Term::blank("b"));
    }

    #[test]
    fn blank_node_label_with_consecutive_medial_dots() {
        // Regression: `(PN_CHARS | '.')* PN_CHARS` allows dot runs inside a
        // label; only a trailing dot terminates the statement.
        let ts = parse_all("_:a..b <http://e/p> _:x.y..z .\n");
        assert_eq!(ts[0].0, Term::blank("a..b"));
        assert_eq!(ts[0].2, Term::blank("x.y..z"));
        let ts = parse_all("_:s <http://e/p> _:e..f.\n");
        assert_eq!(ts[0].2, Term::blank("e..f"));
    }

    #[test]
    fn plain_lang_and_typed_literals() {
        let ts = parse_all(concat!(
            "<http://e/s> <http://e/p> \"hello\" .\n",
            "<http://e/s> <http://e/p> \"bonjour\"@fr-BE .\n",
            "<http://e/s> <http://e/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        ));
        assert_eq!(ts[0].2, Term::Literal(Literal::plain("hello")));
        assert_eq!(ts[1].2, Term::Literal(Literal::lang("bonjour", "fr-BE")));
        assert_eq!(
            ts[2].2,
            Term::Literal(Literal::typed(
                "5",
                "http://www.w3.org/2001/XMLSchema#integer"
            ))
        );
    }

    #[test]
    fn string_escapes() {
        let ts = parse_all(r#"<http://e/s> <http://e/p> "a\tb\nc\"d\\eé\U0001F600" ."#);
        assert_eq!(ts[0].2, Term::literal("a\tb\nc\"d\\eé😀"));
    }

    #[test]
    fn iri_escapes() {
        let ts = parse_all(r"<http://e/café> <http://e/p> <http://e/o> .");
        assert_eq!(ts[0].0, Term::iri("http://e/café"));
    }

    #[test]
    fn error_missing_dot() {
        let e = parse_err("<http://e/s> <http://e/p> <http://e/o>\n");
        assert_eq!(e.line, 1);
        assert!(e.message.contains("'.'"), "{}", e.message);
    }

    #[test]
    fn error_literal_subject_rejected() {
        let e = parse_err("\"lit\" <http://e/p> <http://e/o> .\n");
        assert!(e.message.contains("subject"), "{}", e.message);
    }

    #[test]
    fn error_literal_predicate_rejected() {
        let e = parse_err("<http://e/s> _:b <http://e/o> .\n");
        assert!(e.message.contains("predicate"), "{}", e.message);
    }

    #[test]
    fn error_reports_correct_line() {
        let e = parse_err("<http://e/s> <http://e/p> <http://e/o> .\nmalformed\n");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_unterminated_iri() {
        let e = parse_err("<http://e/s <http://e/p> <http://e/o> .\n");
        assert!(
            e.message.contains("escaped") || e.message.contains("unterminated"),
            "{}",
            e.message
        );
    }

    #[test]
    fn error_bad_escape() {
        let e = parse_err(r#"<http://e/s> <http://e/p> "a\qb" ."#);
        assert!(e.message.contains("invalid escape"), "{}", e.message);
    }

    #[test]
    fn error_bad_unicode_escape() {
        let e = parse_err(r#"<http://e/s> <http://e/p> "\uD800" ."#);
        assert!(e.message.contains("not a valid character"), "{}", e.message);
    }

    #[test]
    fn crlf_line_endings() {
        let ts = parse_all("<http://e/s> <http://e/p> <http://e/o> .\r\n");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn large_document_streams() {
        let mut doc = String::new();
        for i in 0..5_000 {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o{i}> .\n"));
        }
        assert_eq!(parse_all(&doc).len(), 5_000);
    }
}
