//! A streaming parser for a practical subset of Turtle.
//!
//! Supported syntax:
//!
//! * `@prefix` / `@base` directives and their SPARQL forms `PREFIX` / `BASE`;
//! * IRIs (`<…>`), prefixed names (`ex:thing`), blank node labels (`_:b`);
//! * the `a` keyword for `rdf:type`;
//! * predicate-object lists (`;`) and object lists (`,`);
//! * anonymous blank nodes `[ p o ; … ]` (also as subjects);
//! * collections `( a b c )`, expanded to `rdf:first`/`rdf:rest`/`rdf:nil`;
//! * literals: `"…"`, `'…'`, `"""…"""`, `'''…'''`, with `@lang` or
//!   `^^datatype`; numeric shorthand (`5`, `-2.5`, `1e3`) and booleans.
//!
//! Not supported (rejected with a clear error): quads, `GRAPH`, reification
//! syntax (`<< >>`), and `@forAll`-style N3 extensions.
//!
//! Relative IRI resolution is simple concatenation against the current base
//! (sufficient for the ontologies used in the reproduction; documented
//! simplification).

use crate::error::ParseError;
use slider_model::vocab::{RDF_NS, XSD_NS};
use slider_model::{FxHashMap, Literal, Term, TermTriple};
use std::collections::VecDeque;
use std::io::BufRead;

/// Streaming Turtle-subset parser over any `BufRead`.
pub struct TurtleParser<R> {
    chars: CharStream<R>,
    prefixes: FxHashMap<String, String>,
    base: Option<String>,
    pending: VecDeque<TermTriple>,
    blank_counter: u64,
    failed: bool,
}

impl<R: BufRead> TurtleParser<R> {
    /// Creates a parser reading from `reader`.
    pub fn new(reader: R) -> Self {
        TurtleParser {
            chars: CharStream::new(reader),
            prefixes: FxHashMap::default(),
            base: None,
            pending: VecDeque::new(),
            blank_counter: 0,
            failed: false,
        }
    }

    fn fresh_blank(&mut self) -> Term {
        let t = Term::Blank(format!("genid{}", self.blank_counter));
        self.blank_counter += 1;
        t
    }

    fn resolve_iri(&self, iri: String) -> String {
        // Absolute if it has a scheme ("xyz:" before any '/', '?', '#').
        let absolute = iri
            .find(':')
            .is_some_and(|i| !iri[..i].contains(['/', '?', '#']) && i > 0);
        match (&self.base, absolute) {
            (Some(base), false) => format!("{base}{iri}"),
            _ => iri,
        }
    }

    fn expand_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(self.chars.error(format!("undefined prefix '{prefix}:'"))),
        }
    }

    /// Parses one directive or statement, queueing its triples.
    fn parse_statement(&mut self) -> Result<bool, ParseError> {
        self.chars.skip_ws_and_comments()?;
        let Some(c) = self.chars.peek()? else {
            return Ok(false); // EOF
        };
        if c == '@' {
            self.parse_at_directive()?;
            return Ok(true);
        }
        // SPARQL-style PREFIX/BASE (case-insensitive, no trailing dot).
        if let Some(word) = self.chars.peek_word()? {
            if word.eq_ignore_ascii_case("prefix") {
                self.chars.consume_word(&word)?;
                self.parse_prefix_body(false)?;
                return Ok(true);
            }
            if word.eq_ignore_ascii_case("base") {
                self.chars.consume_word(&word)?;
                self.parse_base_body(false)?;
                return Ok(true);
            }
        }
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)?;
        self.chars.skip_ws_and_comments()?;
        self.chars.expect('.')?;
        Ok(true)
    }

    fn parse_at_directive(&mut self) -> Result<(), ParseError> {
        self.chars.expect('@')?;
        let word = self.chars.take_word()?;
        match word.as_str() {
            "prefix" => self.parse_prefix_body(true),
            "base" => self.parse_base_body(true),
            other => Err(self
                .chars
                .error(format!("unsupported directive '@{other}'"))),
        }
    }

    fn parse_prefix_body(&mut self, dotted: bool) -> Result<(), ParseError> {
        self.chars.skip_ws_and_comments()?;
        let prefix = self.chars.take_pname_prefix()?;
        self.chars.expect(':')?;
        self.chars.skip_ws_and_comments()?;
        let iri = self.chars.parse_iriref()?;
        let iri = self.resolve_iri(iri);
        self.prefixes.insert(prefix, iri);
        if dotted {
            self.chars.skip_ws_and_comments()?;
            self.chars.expect('.')?;
        }
        Ok(())
    }

    fn parse_base_body(&mut self, dotted: bool) -> Result<(), ParseError> {
        self.chars.skip_ws_and_comments()?;
        let iri = self.chars.parse_iriref()?;
        self.base = Some(self.resolve_iri(iri));
        if dotted {
            self.chars.skip_ws_and_comments()?;
            self.chars.expect('.')?;
        }
        Ok(())
    }

    fn parse_subject(&mut self) -> Result<Term, ParseError> {
        self.chars.skip_ws_and_comments()?;
        match self.chars.peek()? {
            Some('<') => {
                let iri = self.chars.parse_iriref()?;
                Ok(Term::Iri(self.resolve_iri(iri)))
            }
            Some('_') => {
                let label = self.chars.parse_blank_label()?;
                Ok(Term::Blank(label))
            }
            Some('[') => self.parse_blank_node_property_list(),
            Some('(') => self.parse_collection(),
            Some(_) => {
                let (prefix, local) = self.chars.take_pname()?;
                Ok(Term::Iri(self.expand_pname(&prefix, &local)?))
            }
            None => Err(self
                .chars
                .error("unexpected end of input while reading subject")),
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, ParseError> {
        self.chars.skip_ws_and_comments()?;
        match self.chars.peek()? {
            Some('<') => {
                let iri = self.chars.parse_iriref()?;
                Ok(Term::Iri(self.resolve_iri(iri)))
            }
            Some('a') if self.chars.next_is_standalone_a()? => {
                self.chars.bump()?;
                Ok(Term::iri(format!("{RDF_NS}type")))
            }
            Some(_) => {
                let (prefix, local) = self.chars.take_pname()?;
                Ok(Term::Iri(self.expand_pname(&prefix, &local)?))
            }
            None => Err(self
                .chars
                .error("unexpected end of input while reading predicate")),
        }
    }

    fn parse_object(&mut self) -> Result<Term, ParseError> {
        self.chars.skip_ws_and_comments()?;
        match self.chars.peek()? {
            Some('<') => {
                let iri = self.chars.parse_iriref()?;
                Ok(Term::Iri(self.resolve_iri(iri)))
            }
            Some('_') => Ok(Term::Blank(self.chars.parse_blank_label()?)),
            Some('[') => self.parse_blank_node_property_list(),
            Some('(') => self.parse_collection(),
            Some('"') | Some('\'') => {
                let lit = self.parse_turtle_literal()?;
                Ok(Term::Literal(lit))
            }
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                Ok(Term::Literal(self.chars.parse_numeric_literal()?))
            }
            Some(_) => {
                // `true` / `false` or a prefixed name.
                if let Some(word) = self.chars.peek_word()? {
                    if word == "true" || word == "false" {
                        self.chars.consume_word(&word)?;
                        return Ok(Term::Literal(Literal::typed(
                            word,
                            format!("{XSD_NS}boolean"),
                        )));
                    }
                }
                let (prefix, local) = self.chars.take_pname()?;
                Ok(Term::Iri(self.expand_pname(&prefix, &local)?))
            }
            None => Err(self
                .chars
                .error("unexpected end of input while reading object")),
        }
    }

    fn parse_turtle_literal(&mut self) -> Result<Literal, ParseError> {
        let lexical = self.chars.parse_turtle_string()?;
        match self.chars.peek()? {
            Some('@') => {
                self.chars.bump()?;
                let tag = self.chars.take_lang_tag()?;
                Ok(Literal::lang(lexical, tag))
            }
            Some('^') => {
                self.chars.bump()?;
                self.chars.expect('^')?;
                self.chars.skip_ws_and_comments()?;
                let dt = match self.chars.peek()? {
                    Some('<') => {
                        let iri = self.chars.parse_iriref()?;
                        self.resolve_iri(iri)
                    }
                    _ => {
                        let (prefix, local) = self.chars.take_pname()?;
                        self.expand_pname(&prefix, &local)?
                    }
                };
                Ok(Literal::typed(lexical, dt))
            }
            _ => Ok(Literal::plain(lexical)),
        }
    }

    /// `[ p1 o1 ; p2 o2 ]` — returns the fresh blank node.
    fn parse_blank_node_property_list(&mut self) -> Result<Term, ParseError> {
        self.chars.expect('[')?;
        let node = self.fresh_blank();
        self.chars.skip_ws_and_comments()?;
        if self.chars.peek()? == Some(']') {
            self.chars.bump()?;
            return Ok(node); // anonymous node with no properties
        }
        self.parse_predicate_object_list(&node)?;
        self.chars.skip_ws_and_comments()?;
        self.chars.expect(']')?;
        Ok(node)
    }

    /// `( o1 o2 … )` — expands to an rdf:List, returns the head.
    fn parse_collection(&mut self) -> Result<Term, ParseError> {
        self.chars.expect('(')?;
        let mut items = Vec::new();
        loop {
            self.chars.skip_ws_and_comments()?;
            if self.chars.peek()? == Some(')') {
                self.chars.bump()?;
                break;
            }
            items.push(self.parse_object()?);
        }
        let nil = Term::iri(format!("{RDF_NS}nil"));
        let first = Term::iri(format!("{RDF_NS}first"));
        let rest = Term::iri(format!("{RDF_NS}rest"));
        let mut tail = nil;
        for item in items.into_iter().rev() {
            let node = self.fresh_blank();
            self.pending.push_back((node.clone(), first.clone(), item));
            self.pending.push_back((node.clone(), rest.clone(), tail));
            tail = node;
        }
        Ok(tail)
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                self.pending
                    .push_back((subject.clone(), predicate.clone(), object));
                self.chars.skip_ws_and_comments()?;
                if self.chars.peek()? == Some(',') {
                    self.chars.bump()?;
                } else {
                    break;
                }
            }
            self.chars.skip_ws_and_comments()?;
            if self.chars.peek()? == Some(';') {
                self.chars.bump()?;
                self.chars.skip_ws_and_comments()?;
                // A ';' may be trailing before '.', ']' — then the list ends.
                match self.chars.peek()? {
                    Some('.') | Some(']') | None => break,
                    Some(';') => continue, // tolerate repeated ';'
                    _ => continue,
                }
            } else {
                break;
            }
        }
        Ok(())
    }
}

impl<R: BufRead> Iterator for TurtleParser<R> {
    type Item = Result<TermTriple, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(Ok(t));
            }
            match self.parse_statement() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// A character stream over a `BufRead` with line/column tracking; supplies
/// the low-level token helpers the Turtle grammar needs.
struct CharStream<R> {
    reader: R,
    /// Decoded characters of the current chunk, with a cursor.
    buf: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    eof: bool,
}

impl<R: BufRead> CharStream<R> {
    fn new(reader: R) -> Self {
        CharStream {
            reader,
            buf: Vec::new(),
            pos: 0,
            line: 0,
            column: 1,
            eof: false,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line.max(1), self.column, message)
    }

    fn fill(&mut self) -> Result<bool, ParseError> {
        if self.pos < self.buf.len() {
            return Ok(true);
        }
        if self.eof {
            return Ok(false);
        }
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                self.eof = true;
                Ok(false)
            }
            Ok(_) => {
                self.buf = line.chars().collect();
                self.pos = 0;
                self.line += 1;
                self.column = 1;
                Ok(true)
            }
            Err(e) => {
                self.eof = true;
                Err(ParseError::io(self.line + 1, &e))
            }
        }
    }

    fn peek(&mut self) -> Result<Option<char>, ParseError> {
        if !self.fill()? {
            return Ok(None);
        }
        Ok(Some(self.buf[self.pos]))
    }

    fn peek_at(&mut self, offset: usize) -> Result<Option<char>, ParseError> {
        // Only valid within the current line chunk, which is fine for the
        // lookahead we need (single characters).
        if !self.fill()? {
            return Ok(None);
        }
        Ok(self.buf.get(self.pos + offset).copied())
    }

    fn bump(&mut self) -> Result<Option<char>, ParseError> {
        if !self.fill()? {
            return Ok(None);
        }
        let c = self.buf[self.pos];
        self.pos += 1;
        self.column += 1;
        Ok(Some(c))
    }

    fn expect(&mut self, want: char) -> Result<(), ParseError> {
        match self.bump()? {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(format!("expected {want:?}, found {c:?}"))),
            None => Err(self.error(format!("expected {want:?}, found end of input"))),
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek()? {
                Some(c) if c.is_whitespace() => {
                    self.bump()?;
                }
                Some('#') => {
                    // Comment runs to end of line chunk.
                    self.pos = self.buf.len();
                }
                _ => return Ok(()),
            }
        }
    }

    /// Peeks the next bareword (letters only), without consuming.
    fn peek_word(&mut self) -> Result<Option<String>, ParseError> {
        if !self.fill()? {
            return Ok(None);
        }
        let mut word = String::new();
        let mut i = self.pos;
        while i < self.buf.len() && self.buf[i].is_ascii_alphabetic() {
            word.push(self.buf[i]);
            i += 1;
        }
        // A word followed by ':' is a prefixed name, not a keyword.
        if i < self.buf.len() && self.buf[i] == ':' {
            return Ok(None);
        }
        if word.is_empty() {
            Ok(None)
        } else {
            Ok(Some(word))
        }
    }

    fn consume_word(&mut self, word: &str) -> Result<(), ParseError> {
        for expected in word.chars() {
            match self.bump()? {
                Some(c) if c == expected => {}
                _ => return Err(self.error(format!("expected keyword '{word}'"))),
            }
        }
        Ok(())
    }

    fn take_word(&mut self) -> Result<String, ParseError> {
        let mut word = String::new();
        while let Some(c) = self.peek()? {
            if c.is_ascii_alphabetic() {
                word.push(c);
                self.bump()?;
            } else {
                break;
            }
        }
        if word.is_empty() {
            Err(self.error("expected a keyword"))
        } else {
            Ok(word)
        }
    }

    /// Is the next char a standalone `a` keyword (followed by delimiter)?
    fn next_is_standalone_a(&mut self) -> Result<bool, ParseError> {
        if self.peek()? != Some('a') {
            return Ok(false);
        }
        match self.peek_at(1)? {
            None => Ok(true),
            Some(c) => {
                Ok(c.is_whitespace() || c == '<' || c == '[' || c == '(' || c == '"' || c == '\'')
            }
        }
    }

    fn parse_iriref(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump()? {
                Some('>') => return Ok(iri),
                Some('\\') => match self.bump()? {
                    Some('u') => iri.push(self.parse_hex_escape(4)?),
                    Some('U') => iri.push(self.parse_hex_escape(8)?),
                    Some(c) => return Err(self.error(format!("invalid IRI escape '\\{c}'"))),
                    None => return Err(self.error("unterminated IRI escape")),
                },
                Some(c) if c == ' ' || c == '\n' || c == '<' => {
                    return Err(self.error(format!("character {c:?} not allowed inside an IRI")));
                }
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI (missing '>')")),
            }
        }
    }

    fn parse_blank_label(&mut self) -> Result<String, ParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let mut label = String::new();
        while let Some(c) = self.peek()? {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.bump()?;
            } else if c == '.' {
                // Medial dots — including runs (`_:a..b`) — are part of
                // the label per BLANK_NODE_LABEL; a trailing dot is the
                // statement terminator. Keep the dot only if a label
                // character follows the whole run.
                let mut k = 1usize;
                let keeps = loop {
                    match self.peek_at(k)? {
                        Some('.') => k += 1,
                        Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => break true,
                        _ => break false,
                    }
                };
                if !keeps {
                    break;
                }
                label.push(c);
                self.bump()?;
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(label)
    }

    /// The prefix part of a pname (may be empty for `:local`).
    fn take_pname_prefix(&mut self) -> Result<String, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.peek()? {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                prefix.push(c);
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(prefix)
    }

    /// A full `prefix:local` pname. Returns `(prefix, local)`.
    fn take_pname(&mut self) -> Result<(String, String), ParseError> {
        let prefix = self.take_pname_prefix()?;
        match self.peek()? {
            Some(':') => {
                self.bump()?;
            }
            Some(c) => {
                return Err(self.error(format!("expected ':' in prefixed name, found {c:?}")))
            }
            None => return Err(self.error("expected ':' in prefixed name, found end of input")),
        }
        let mut local = String::new();
        while let Some(c) = self.peek()? {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '%' {
                local.push(c);
                self.bump()?;
            } else if c == '.' {
                // '.' is allowed inside a local name but a trailing '.' ends
                // the statement; only take it if another name char follows.
                match self.peek_at(1)? {
                    Some(n) if n.is_alphanumeric() || n == '_' || n == '-' => {
                        local.push(c);
                        self.bump()?;
                    }
                    _ => break,
                }
            } else if c == '\\' {
                // PN_LOCAL_ESC: \~ \. \- \! etc. — take the escaped char.
                self.bump()?;
                match self.bump()? {
                    Some(esc) => local.push(esc),
                    None => return Err(self.error("unterminated local-name escape")),
                }
            } else {
                break;
            }
        }
        Ok((prefix, local))
    }

    fn take_lang_tag(&mut self) -> Result<String, ParseError> {
        let mut tag = String::new();
        while let Some(c) = self.peek()? {
            if c.is_ascii_alphanumeric() || c == '-' {
                tag.push(c);
                self.bump()?;
            } else {
                break;
            }
        }
        if tag.is_empty() {
            Err(self.error("empty language tag"))
        } else {
            Ok(tag)
        }
    }

    /// Parses any of the four Turtle string forms, returning the unescaped
    /// content.
    fn parse_turtle_string(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek()? {
            Some(c @ ('"' | '\'')) => c,
            _ => return Err(self.error("expected a string literal")),
        };
        self.bump()?;
        // Check for long string form: two more quotes.
        if self.peek()? == Some(quote) && self.peek_at(1)? == Some(quote) {
            self.bump()?;
            self.bump()?;
            return self.parse_long_string(quote);
        }
        // Empty short string: `""` — peek was not quote-quote, handle "" case:
        if self.peek()? == Some(quote) {
            self.bump()?;
            return Ok(String::new());
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                Some(c) if c == quote => return Ok(out),
                Some('\\') => out.push(self.parse_escape_char()?),
                Some('\n') => return Err(self.error("newline in short string literal")),
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn parse_long_string(&mut self, quote: char) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut quotes = 0usize;
        loop {
            match self.bump()? {
                Some(c) if c == quote => {
                    quotes += 1;
                    if quotes == 3 {
                        return Ok(out);
                    }
                }
                Some('\\') => {
                    for _ in 0..quotes {
                        out.push(quote);
                    }
                    quotes = 0;
                    out.push(self.parse_escape_char()?);
                }
                Some(c) => {
                    for _ in 0..quotes {
                        out.push(quote);
                    }
                    quotes = 0;
                    out.push(c);
                }
                None => return Err(self.error("unterminated long string literal")),
            }
        }
    }

    fn parse_escape_char(&mut self) -> Result<char, ParseError> {
        match self.bump()? {
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{8}'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.parse_hex_escape(4),
            Some('U') => self.parse_hex_escape(8),
            Some(c) => Err(self.error(format!("invalid escape '\\{c}'"))),
            None => Err(self.error("unterminated escape sequence")),
        }
    }

    fn parse_hex_escape(&mut self, digits: u32) -> Result<char, ParseError> {
        let mut value: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()?
                .ok_or_else(|| self.error("unterminated \\u escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.error(format!("invalid hex digit {c:?} in \\u escape")))?;
            value = value * 16 + d;
        }
        char::from_u32(value)
            .ok_or_else(|| self.error(format!("\\u escape U+{value:04X} is not a valid character")))
    }

    /// `5`, `-2`, `+3.14`, `1e-3` → typed xsd literal.
    fn parse_numeric_literal(&mut self) -> Result<Literal, ParseError> {
        let mut text = String::new();
        if matches!(self.peek()?, Some('+') | Some('-')) {
            text.push(self.bump()?.unwrap());
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek()? {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump()?;
            } else if c == '.' && !saw_dot && !saw_exp {
                // A '.' followed by a non-digit terminates the statement.
                match self.peek_at(1)? {
                    Some(n) if n.is_ascii_digit() => {
                        saw_dot = true;
                        text.push(c);
                        self.bump()?;
                    }
                    _ => break,
                }
            } else if (c == 'e' || c == 'E') && !saw_exp {
                saw_exp = true;
                text.push(c);
                self.bump()?;
                if matches!(self.peek()?, Some('+') | Some('-')) {
                    text.push(self.bump()?.unwrap());
                }
            } else {
                break;
            }
        }
        if text.is_empty() || text == "+" || text == "-" {
            return Err(self.error("malformed numeric literal"));
        }
        let dt = if saw_exp {
            format!("{XSD_NS}double")
        } else if saw_dot {
            format!("{XSD_NS}decimal")
        } else {
            format!("{XSD_NS}integer")
        };
        Ok(Literal::typed(text, dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(doc: &str) -> Vec<TermTriple> {
        TurtleParser::new(doc.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    fn parse_err(doc: &str) -> ParseError {
        TurtleParser::new(doc.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err()
    }

    #[test]
    fn prefixed_names() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p ex:o .\n");
        assert_eq!(
            ts,
            vec![(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::iri("http://e/o")
            )]
        );
    }

    #[test]
    fn sparql_style_prefix() {
        let ts = parse_all("PREFIX ex: <http://e/>\nex:s ex:p ex:o .\n");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, Term::iri("http://e/s"));
    }

    #[test]
    fn empty_prefix() {
        let ts = parse_all("@prefix : <http://e/> .\n:s :p :o .\n");
        assert_eq!(ts[0].0, Term::iri("http://e/s"));
    }

    #[test]
    fn base_resolution() {
        let ts = parse_all("@base <http://e/> .\n<s> <p> <o> .\n");
        assert_eq!(ts[0].0, Term::iri("http://e/s"));
        assert_eq!(ts[0].1, Term::iri("http://e/p"));
    }

    #[test]
    fn a_keyword() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s a ex:C .\n");
        assert_eq!(
            ts[0].1,
            Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        );
    }

    #[test]
    fn predicate_object_and_object_lists() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p ex:o1 , ex:o2 ; ex:q ex:o3 .\n");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].2, Term::iri("http://e/o1"));
        assert_eq!(ts[1].2, Term::iri("http://e/o2"));
        assert_eq!(ts[2].1, Term::iri("http://e/q"));
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p ex:o ; .\n");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn labelled_blank_node_with_medial_dots() {
        // Regression: BLANK_NODE_LABEL allows medial dots (even runs); a
        // trailing dot is the statement terminator.
        let ts = parse_all("_:b1.c <http://e/p> _:x..y .\n");
        assert_eq!(ts[0].0, Term::blank("b1.c"));
        assert_eq!(ts[0].2, Term::blank("x..y"));
        let ts = parse_all("_:s <http://e/p> _:e.f.\n");
        assert_eq!(ts[0].2, Term::blank("e.f"));
    }

    #[test]
    fn anonymous_blank_node() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p [ ex:q ex:o ] .\n");
        assert_eq!(ts.len(), 2);
        // [ ... ] triples come first (queued during object parse).
        assert!(matches!(ts[0].0, Term::Blank(_)));
        assert_eq!(ts[0].1, Term::iri("http://e/q"));
        assert_eq!(ts[1].2, ts[0].0);
    }

    #[test]
    fn empty_anonymous_node() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p [] .\n");
        assert_eq!(ts.len(), 1);
        assert!(matches!(ts[0].2, Term::Blank(_)));
    }

    #[test]
    fn collections_expand_to_rdf_lists() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p ( ex:a ex:b ) .\n");
        // 2 items × (first+rest) + main triple = 5
        assert_eq!(ts.len(), 5);
        let first = Term::iri(format!("{RDF_NS}first"));
        let nil = Term::iri(format!("{RDF_NS}nil"));
        assert_eq!(ts.iter().filter(|t| t.1 == first).count(), 2);
        assert_eq!(ts.iter().filter(|t| t.2 == nil).count(), 1);
    }

    #[test]
    fn empty_collection_is_nil() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p () .\n");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].2, Term::iri(format!("{RDF_NS}nil")));
    }

    #[test]
    fn literals_all_forms() {
        let ts = parse_all(concat!(
            "@prefix ex: <http://e/> .\n",
            "ex:s ex:p \"short\" .\n",
            "ex:s ex:p 'single' .\n",
            "ex:s ex:p \"\"\"long\nmulti\"\"\" .\n",
            "ex:s ex:p \"fr\"@fr .\n",
            "ex:s ex:p \"5\"^^ex:dt .\n",
            "ex:s ex:p 42 .\n",
            "ex:s ex:p -2.5 .\n",
            "ex:s ex:p 1e3 .\n",
            "ex:s ex:p true .\n",
        ));
        assert_eq!(ts[0].2, Term::literal("short"));
        assert_eq!(ts[1].2, Term::literal("single"));
        assert_eq!(ts[2].2, Term::literal("long\nmulti"));
        assert_eq!(ts[3].2, Term::Literal(Literal::lang("fr", "fr")));
        assert_eq!(ts[4].2, Term::Literal(Literal::typed("5", "http://e/dt")));
        assert_eq!(
            ts[5].2,
            Term::Literal(Literal::typed("42", format!("{XSD_NS}integer")))
        );
        assert_eq!(
            ts[6].2,
            Term::Literal(Literal::typed("-2.5", format!("{XSD_NS}decimal")))
        );
        assert_eq!(
            ts[7].2,
            Term::Literal(Literal::typed("1e3", format!("{XSD_NS}double")))
        );
        assert_eq!(
            ts[8].2,
            Term::Literal(Literal::typed("true", format!("{XSD_NS}boolean")))
        );
    }

    #[test]
    fn empty_string_literal() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p \"\" .\n");
        assert_eq!(ts[0].2, Term::literal(""));
    }

    #[test]
    fn multiline_statement() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s\n  ex:p\n  ex:o .\n");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn comments_anywhere() {
        let ts =
            parse_all("# header\n@prefix ex: <http://e/> . # trailing\nex:s ex:p # mid\n ex:o .\n");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn undefined_prefix_errors() {
        let e = parse_err("ex:s ex:p ex:o .\n");
        assert!(e.message.contains("undefined prefix"), "{}", e.message);
    }

    #[test]
    fn unsupported_directive_errors() {
        let e = parse_err("@keywords a .\n");
        assert!(e.message.contains("unsupported directive"), "{}", e.message);
    }

    #[test]
    fn local_name_with_dots_and_escape() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:a.b ex:p ex:o\\-x .\n");
        assert_eq!(ts[0].0, Term::iri("http://e/a.b"));
        assert_eq!(ts[0].2, Term::iri("http://e/o-x"));
    }

    #[test]
    fn numeric_dot_boundary() {
        // `5.` must parse as integer 5 followed by statement-terminating dot.
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p 5.\n");
        assert_eq!(
            ts[0].2,
            Term::Literal(Literal::typed("5", format!("{XSD_NS}integer")))
        );
    }

    #[test]
    fn nested_blank_node_property_lists() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p [ ex:q [ ex:r ex:o ] ] .\n");
        // inner: (b1 r o); outer: (b0 q b1); main: (s p b0)
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].1, Term::iri("http://e/r"));
        assert_eq!(ts[1].1, Term::iri("http://e/q"));
        assert_eq!(ts[1].2, ts[0].0, "outer object is the inner node");
        assert_eq!(ts[2].2, ts[1].0, "main object is the outer node");
        assert_ne!(ts[0].0, ts[1].0, "fresh blank nodes are distinct");
    }

    #[test]
    fn collection_of_numbers() {
        let ts = parse_all("@prefix ex: <http://e/> .\nex:s ex:p ( 1 2 ) .\n");
        let first = Term::iri(format!("{RDF_NS}first"));
        let mut firsts: Vec<&Term> = ts.iter().filter(|t| t.1 == first).map(|t| &t.2).collect();
        firsts.sort();
        assert_eq!(
            firsts,
            vec![
                &Term::Literal(Literal::typed("1", format!("{XSD_NS}integer"))),
                &Term::Literal(Literal::typed("2", format!("{XSD_NS}integer"))),
            ]
        );
        // The list is linked: exactly one rest→nil and one rest→node.
        let rest = Term::iri(format!("{RDF_NS}rest"));
        let nil = Term::iri(format!("{RDF_NS}nil"));
        assert_eq!(ts.iter().filter(|t| t.1 == rest && t.2 == nil).count(), 1);
        assert_eq!(ts.iter().filter(|t| t.1 == rest && t.2 != nil).count(), 1);
    }

    #[test]
    fn later_prefix_redefinition_wins() {
        let ts = parse_all(
            "@prefix ex: <http://a/> .\nex:s ex:p ex:o .\n@prefix ex: <http://b/> .\nex:s ex:p ex:o .\n",
        );
        assert_eq!(ts[0].0, Term::iri("http://a/s"));
        assert_eq!(ts[1].0, Term::iri("http://b/s"));
    }

    #[test]
    fn base_applies_to_prefix_definitions() {
        // A relative prefix IRI resolves against the current base.
        let ts = parse_all("@base <http://e/> .\n@prefix v: <vocab#> .\nv:s v:p v:o .\n");
        assert_eq!(ts[0].0, Term::iri("http://e/vocab#s"));
    }

    #[test]
    fn error_position_is_reported() {
        let e = parse_err("@prefix ex: <http://e/> .\nex:s ex:p @bogus .\n");
        assert_eq!(e.line, 2);
        assert!(e.column > 1);
    }

    #[test]
    fn parser_stops_after_first_error() {
        let mut p = TurtleParser::new("no_colon_here .\n".as_bytes());
        assert!(p.next().unwrap().is_err());
        assert!(p.next().is_none(), "failed parser must fuse");
    }

    #[test]
    fn subject_property_list() {
        let ts = parse_all("@prefix ex: <http://e/> .\n[ ex:p ex:o ] ex:q ex:r .\n");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].1, Term::iri("http://e/p"));
        assert_eq!(ts[1].1, Term::iri("http://e/q"));
        assert_eq!(ts[0].0, ts[1].0);
    }
}
