//! N-Triples serialization.
//!
//! The workload generators (`slider-workloads`) emit benchmark ontologies
//! through this writer, so the parse-side and write-side escaping rules
//! round-trip exactly (property-tested in `tests/`).

use crate::error::ParseError;
use slider_model::{Dictionary, LiteralKind, Term, TermTriple, Triple};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Appends the N-Triples form of `term` to `out`.
pub fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push('<');
            escape_iri(out, iri);
            out.push('>');
        }
        Term::Blank(label) => {
            out.push_str("_:");
            out.push_str(label);
        }
        Term::Literal(lit) => {
            out.push('"');
            escape_string(out, &lit.lexical);
            out.push('"');
            match &lit.kind {
                LiteralKind::Plain => {}
                LiteralKind::Lang(tag) => {
                    out.push('@');
                    out.push_str(tag);
                }
                LiteralKind::Typed(dt) => {
                    out.push_str("^^<");
                    escape_iri(out, dt);
                    out.push('>');
                }
            }
        }
    }
}

/// Appends one N-Triples statement (including the trailing ` .\n`).
pub fn write_triple(out: &mut String, triple: &TermTriple) {
    write_term(out, &triple.0);
    out.push(' ');
    write_term(out, &triple.1);
    out.push(' ');
    write_term(out, &triple.2);
    out.push_str(" .\n");
}

fn escape_string(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn escape_iri(out: &mut String, iri: &str) {
    for c in iri.chars() {
        match c {
            // Characters N-Triples forbids raw inside IRIREF.
            '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c if (c as u32) <= 0x20 => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A buffered N-Triples writer over any `io::Write`.
pub struct NTriplesWriter<W: Write> {
    sink: W,
    buf: String,
    written: usize,
}

impl<W: Write> NTriplesWriter<W> {
    /// Creates a writer. Wrap `sink` in a `BufWriter` for file output.
    pub fn new(sink: W) -> Self {
        NTriplesWriter {
            sink,
            buf: String::with_capacity(256),
            written: 0,
        }
    }

    /// Writes one decoded triple.
    pub fn write(&mut self, triple: &TermTriple) -> io::Result<()> {
        self.buf.clear();
        write_triple(&mut self.buf, triple);
        self.sink.write_all(self.buf.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Writes one encoded triple, decoding through `dict`.
    pub fn write_encoded(&mut self, triple: Triple, dict: &Dictionary) -> io::Result<()> {
        let decoded = dict.decode_triple(triple).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "triple references unknown NodeId",
            )
        })?;
        self.write(&decoded)
    }

    /// Number of triples written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Serializes a batch of decoded triples to an N-Triples string.
pub fn to_ntriples_string<'a>(triples: impl IntoIterator<Item = &'a TermTriple>) -> String {
    let mut out = String::new();
    for t in triples {
        write_triple(&mut out, t);
    }
    out
}

/// Serializes encoded triples through a dictionary; unknown ids error.
pub fn encoded_to_ntriples_string(
    triples: &[Triple],
    dict: &Dictionary,
) -> Result<String, ParseError> {
    let mut out = String::new();
    for &t in triples {
        let decoded = dict
            .decode_triple(t)
            .ok_or_else(|| ParseError::new(0, 0, "triple references unknown NodeId"))?;
        write_triple(&mut out, &decoded);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntriples::NTriplesParser;
    use slider_model::Literal;

    fn roundtrip(t: TermTriple) {
        let mut doc = String::new();
        write_triple(&mut doc, &t);
        let parsed: Vec<TermTriple> = NTriplesParser::new(doc.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("failed to reparse {doc:?}: {e}"));
        assert_eq!(parsed, vec![t], "document was {doc:?}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip((
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        ));
    }

    #[test]
    fn roundtrip_literals() {
        roundtrip((
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::Literal(Literal::lang("héllo\nworld\t\"x\"", "en")),
        ));
        roundtrip((
            Term::blank("b1"),
            Term::iri("http://e/p"),
            Term::Literal(Literal::typed("\\back\\", "http://e/dt")),
        ));
    }

    #[test]
    fn roundtrip_control_characters() {
        roundtrip((
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("a\u{1}b\u{c}c\u{8}"),
        ));
    }

    #[test]
    fn iri_with_forbidden_chars_is_escaped() {
        let mut out = String::new();
        write_term(&mut out, &Term::iri("http://e/a<b>c"));
        assert!(!out[1..out.len() - 1].contains('<'));
        assert!(out.contains("\\u003C"));
    }

    #[test]
    fn writer_counts_and_emits() {
        let mut w = NTriplesWriter::new(Vec::new());
        let t = (
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::literal("x"),
        );
        w.write(&t).unwrap();
        w.write(&t).unwrap();
        assert_eq!(w.written(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn write_encoded_through_dictionary() {
        let dict = Dictionary::new();
        let t = dict.encode_triple(&(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        ));
        let mut w = NTriplesWriter::new(Vec::new());
        w.write_encoded(t, &dict).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(text, "<http://e/s> <http://e/p> <http://e/o> .\n");
    }

    #[test]
    fn encoded_to_string_rejects_unknown_ids() {
        let dict = Dictionary::new();
        let bogus = Triple::new(
            slider_model::NodeId(9_999_999),
            slider_model::NodeId(0),
            slider_model::NodeId(0),
        );
        assert!(encoded_to_ntriples_string(&[bogus], &dict).is_err());
    }

    // ---------- writer ↔ parser round-trip property tests ------------------
    //
    // The writer's escaping must agree with BOTH parsers: the N-Triples
    // parser (the canonical reader of its output) and the Turtle parser
    // (N-Triples is a Turtle subset, and mixed pipelines reparse writer
    // output as Turtle). Generated terms deliberately include every
    // character class that needs escaping: IRI-forbidden characters
    // (`<>"{}|^`\` and controls), literals with quotes/newlines/langtags,
    // and blank labels with medial dots.

    mod roundtrip_props {
        use super::*;
        use crate::turtle::TurtleParser;
        use proptest::prelude::*;

        /// Characters N-Triples forbids raw inside IRIREF — the writer
        /// must `\u`-escape every one of them.
        fn iri_hostile() -> impl Strategy<Value = String> {
            prop_oneof![
                Just("<"),
                Just(">"),
                Just("\""),
                Just("{"),
                Just("}"),
                Just("|"),
                Just("^"),
                Just("`"),
                Just("\\"),
                Just(" "),
                Just("\t"),
                Just("\n"),
                Just("\u{1}"),
                Just("é"),
                Just("😀"),
            ]
            .prop_map(str::to_owned)
        }

        fn iri() -> impl Strategy<Value = Term> {
            (
                "[a-zA-Z0-9/#.-]{0,8}",
                iri_hostile(),
                "[a-zA-Z0-9/#.-]{0,8}",
                iri_hostile(),
            )
                .prop_map(|(a, h1, b, h2)| Term::iri(format!("http://e/{a}{h1}{b}{h2}")))
        }

        /// Blank labels including medial dots (valid per the W3C grammar:
        /// `_:b1.c`, `_:a..b`), never leading or trailing.
        fn blank() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[A-Za-z0-9][A-Za-z0-9_-]{0,6}".prop_map(Term::blank),
                ("[A-Za-z0-9]{1,4}", "[.]{1,2}", "[A-Za-z0-9]{1,4}")
                    .prop_map(|(a, dots, b)| Term::blank(format!("{a}{dots}{b}"))),
            ]
        }

        fn literal() -> impl Strategy<Value = Term> {
            // `any::<String>()` includes control characters, quotes,
            // backslashes and non-ASCII codepoints.
            (any::<String>(), 0u8..3, "[a-zA-Z]{1,3}", "[a-z0-9]{1,4}").prop_map(
                |(lexical, kind, tag, subtag)| {
                    Term::Literal(match kind {
                        0 => Literal::plain(lexical),
                        1 => Literal::lang(lexical, format!("{tag}-{subtag}")),
                        _ => Literal::typed(lexical, format!("http://e/dt#{subtag}")),
                    })
                },
            )
        }

        fn subject() -> impl Strategy<Value = Term> {
            prop_oneof![iri(), blank()]
        }

        fn object() -> impl Strategy<Value = Term> {
            prop_oneof![iri(), blank(), literal()]
        }

        fn triple() -> impl Strategy<Value = TermTriple> {
            (subject(), iri(), object())
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

            #[test]
            fn ntriples_roundtrip(triples in prop::collection::vec(triple(), 1..4)) {
                let doc = to_ntriples_string(&triples);
                let reparsed: Vec<TermTriple> = NTriplesParser::new(doc.as_bytes())
                    .collect::<Result<_, _>>()
                    .map_err(|e| TestCaseError::fail(format!("{e} in {doc:?}")))?;
                prop_assert_eq!(&reparsed, &triples, "document was {:?}", doc);
            }

            #[test]
            fn turtle_roundtrip(triples in prop::collection::vec(triple(), 1..4)) {
                let doc = to_ntriples_string(&triples);
                let reparsed: Vec<TermTriple> = TurtleParser::new(doc.as_bytes())
                    .collect::<Result<_, _>>()
                    .map_err(|e| TestCaseError::fail(format!("{e} in {doc:?}")))?;
                prop_assert_eq!(&reparsed, &triples, "document was {:?}", doc);
            }
        }
    }
}
