//! Streaming RDF parsers and serializers for the Slider reproduction.
//!
//! The paper's benchmark times *include parsing* ("the running times include
//! both parsing and inferencing times", §3), so the parser is part of the
//! measured system and is implemented from scratch here rather than taken
//! from an external crate.
//!
//! Two concrete syntaxes are supported:
//!
//! * **N-Triples** ([`NTriplesParser`]) — line-oriented, the format all
//!   workload generators emit;
//! * a practical **Turtle subset** ([`TurtleParser`]) — prefixes, `a`,
//!   predicate-object/object lists, anonymous blank nodes, collections,
//!   numeric/boolean shorthand literals — enough to load real-world
//!   ontology files.
//!
//! Both parsers are streaming: they implement
//! `Iterator<Item = Result<TermTriple, ParseError>>` over any `BufRead`, and
//! never hold the whole document in memory. Errors carry line/column
//! positions.
//!
//! ## Example
//!
//! Parse Turtle, serialise back to N-Triples, and re-parse — the round-trip
//! is lossless:
//!
//! ```
//! use slider_parser::{parse_ntriples_str, parse_turtle_str, write_triple};
//!
//! let ttl = r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:felix a ex:Cat ; ex:name "Felix" .
//! "#;
//! let triples: Vec<_> = parse_turtle_str(ttl).collect::<Result<_, _>>().unwrap();
//! assert_eq!(triples.len(), 2);
//!
//! let mut doc = String::new();
//! for t in &triples {
//!     write_triple(&mut doc, t);
//! }
//! let reparsed: Vec<_> = parse_ntriples_str(&doc).collect::<Result<_, _>>().unwrap();
//! assert_eq!(reparsed, triples);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ntriples;
pub mod turtle;
pub mod writer;

pub use error::ParseError;
pub use ntriples::NTriplesParser;
pub use turtle::TurtleParser;
pub use writer::{write_term, write_triple, NTriplesWriter};

use slider_model::{Dictionary, TermTriple, Triple};
use std::io::BufRead;

/// Supported concrete syntaxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Line-oriented N-Triples (`.nt`).
    NTriples,
    /// Turtle subset (`.ttl`).
    Turtle,
}

impl Format {
    /// Guesses the format from a file extension (`nt`, `ntriples`, `ttl`,
    /// `turtle`); defaults to N-Triples for anything else.
    pub fn from_extension(ext: &str) -> Format {
        match ext.to_ascii_lowercase().as_str() {
            "ttl" | "turtle" => Format::Turtle,
            _ => Format::NTriples,
        }
    }
}

/// Parses a complete document from `reader` in the given `format`.
pub fn parse<R: BufRead + 'static>(
    reader: R,
    format: Format,
) -> Box<dyn Iterator<Item = Result<TermTriple, ParseError>>> {
    match format {
        Format::NTriples => Box::new(NTriplesParser::new(reader)),
        Format::Turtle => Box::new(TurtleParser::new(reader)),
    }
}

/// Parses an N-Triples document held in a string.
pub fn parse_ntriples_str(
    input: &str,
) -> impl Iterator<Item = Result<TermTriple, ParseError>> + '_ {
    NTriplesParser::new(input.as_bytes())
}

/// Parses a Turtle document held in a string.
pub fn parse_turtle_str(input: &str) -> impl Iterator<Item = Result<TermTriple, ParseError>> + '_ {
    TurtleParser::new(input.as_bytes())
}

/// Parses N-Triples from `reader` and dictionary-encodes every triple —
/// the paper's *input manager* path (parse → intern → encoded triple).
pub fn load_ntriples<R: BufRead>(reader: R, dict: &Dictionary) -> Result<Vec<Triple>, ParseError> {
    let mut out = Vec::new();
    for t in NTriplesParser::new(reader) {
        out.push(dict.encode_triple_owned(t?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_from_extension() {
        assert_eq!(Format::from_extension("ttl"), Format::Turtle);
        assert_eq!(Format::from_extension("TTL"), Format::Turtle);
        assert_eq!(Format::from_extension("turtle"), Format::Turtle);
        assert_eq!(Format::from_extension("nt"), Format::NTriples);
        assert_eq!(Format::from_extension("xyz"), Format::NTriples);
    }

    #[test]
    fn load_ntriples_encodes() {
        let dict = Dictionary::new();
        let doc = "<http://e/s> <http://e/p> <http://e/o> .\n\
                   <http://e/s> <http://e/p> \"lit\" .\n";
        let triples = load_ntriples(doc.as_bytes(), &dict).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].s, triples[1].s);
        assert_ne!(triples[0].o, triples[1].o);
    }

    #[test]
    fn parse_dispatches_both_formats() {
        let nt = "<http://e/s> <http://e/p> <http://e/o> .\n";
        let ttl = "@prefix e: <http://e/> . e:s e:p e:o .\n";
        let a: Vec<_> = parse(std::io::Cursor::new(nt.to_owned()), Format::NTriples)
            .collect::<Result<_, _>>()
            .unwrap();
        let b: Vec<_> = parse(std::io::Cursor::new(ttl.to_owned()), Format::Turtle)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(a, b);
    }
}
