//! Parse errors with source positions.

use std::fmt;

/// An error encountered while parsing an RDF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// 1-based column (character offset) within the line, when known.
    pub column: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Builds an error at `line`/`column`.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    /// Builds an I/O-originated error (column 0).
    pub fn io(line: usize, err: &std::io::Error) -> Self {
        ParseError {
            line,
            column: 0,
            message: format!("I/O error: {err}"),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 14, "unexpected character 'x'");
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("column 14"), "{s}");
        assert!(s.contains("unexpected character"), "{s}");
    }

    #[test]
    fn io_constructor() {
        let ioe = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = ParseError::io(7, &ioe);
        assert_eq!(e.line, 7);
        assert!(e.message.contains("I/O error"));
    }
}
