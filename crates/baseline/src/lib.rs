//! Batch forward-chaining materialisers — the comparison baseline.
//!
//! The paper benchmarks Slider against **OWLIM-SE**, a commercial batch
//! reasoner we cannot ship. This crate provides the stand-in (see
//! `DESIGN.md` §3 for the substitution argument): two batch materialisers
//! that run the *same* [`Ruleset`](slider_rules::Ruleset)s over the *same*
//! store substrate, so the
//! comparison isolates the paper's architectural claim — buffered
//! incremental evaluation with duplicate limitation vs. batch fixpoint
//! iteration.
//!
//! * [`NaiveReasoner`] re-applies every rule to the **entire store** each
//!   round until fixpoint. This is the "commonly used iterative rules
//!   scheme" the paper attributes O(n³) duplicate work to on subsumption
//!   chains, and is the configuration used as the OWLIM-SE stand-in in the
//!   benchmark harness.
//! * [`SemiNaiveReasoner`] applies rules only to the previous round's
//!   *delta*. It is a stronger baseline and — because it is an independent,
//!   simple implementation — the correctness oracle for Slider's closures
//!   in the test suite.
//! * [`RecomputeOracle`] extends the oracle role to **retraction**: it
//!   tracks the explicit triple set and recomputes the closure from
//!   scratch on demand, which is both the correctness reference for the
//!   DRed maintenance subsystem and the batch comparator the `retraction`
//!   bench measures against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod naive;
mod recompute;
mod semi_naive;

pub use naive::NaiveReasoner;
pub use recompute::RecomputeOracle;
pub use semi_naive::{closure, SemiNaiveReasoner};

/// Statistics of one batch materialisation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Fixpoint rounds executed (the final, empty round included).
    pub rounds: usize,
    /// Conclusions derived, *including* duplicates — the quantity the
    /// paper's duplicate-limitation argument is about.
    pub derived: usize,
    /// Conclusions that were actually new (inserted into the store).
    pub inserted: usize,
}

impl BatchStats {
    /// Fraction of derivations that were duplicates (0.0 if none derived).
    pub fn duplicate_ratio(&self) -> f64 {
        if self.derived == 0 {
            0.0
        } else {
            1.0 - (self.inserted as f64 / self.derived as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_ratio() {
        let s = BatchStats {
            rounds: 3,
            derived: 100,
            inserted: 25,
        };
        assert!((s.duplicate_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(BatchStats::default().duplicate_ratio(), 0.0);
    }
}
