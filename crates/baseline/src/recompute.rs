//! The recompute-from-scratch retraction oracle.
//!
//! Truth maintenance (Slider's DRed subsystem) is easy to get subtly wrong
//! — overdeletion can miss a dependency, rederivation can resurrect too
//! little or too much. This oracle is the trivially correct reference: it
//! keeps the *explicit* (asserted) triple set and, on every query, recloses
//! it from scratch with the semi-naive materialiser. `tests/retraction.rs`
//! asserts that any interleaving of additions and retractions leaves
//! Slider's store equal to [`RecomputeOracle::closure`].

use crate::semi_naive::closure;
use slider_model::{FxHashSet, Triple};
use slider_rules::Ruleset;
use slider_store::VerticalStore;

/// A stateful explicit-set tracker whose closure is recomputed from
/// scratch — the correctness baseline (and worst-case performance
/// comparator) for incremental deletion.
pub struct RecomputeOracle {
    ruleset: Ruleset,
    explicit: FxHashSet<Triple>,
}

impl RecomputeOracle {
    /// An oracle over `ruleset` with no assertions.
    pub fn new(ruleset: Ruleset) -> Self {
        RecomputeOracle {
            ruleset,
            explicit: FxHashSet::default(),
        }
    }

    /// Asserts `triples`; returns how many were new assertions.
    pub fn add(&mut self, triples: &[Triple]) -> usize {
        triples.iter().filter(|&&t| self.explicit.insert(t)).count()
    }

    /// Retracts `triples`; unknown (never-asserted) triples are skipped.
    /// Returns how many assertions were retracted.
    pub fn remove(&mut self, triples: &[Triple]) -> usize {
        triples
            .iter()
            .filter(|&&t| self.explicit.remove(&t))
            .count()
    }

    /// Number of surviving assertions.
    pub fn explicit_len(&self) -> usize {
        self.explicit.len()
    }

    /// The surviving assertions (no ordering guarantee).
    pub fn explicit(&self) -> Vec<Triple> {
        self.explicit.iter().copied().collect()
    }

    /// The from-scratch semi-naive closure of the surviving assertions.
    pub fn closure(&self) -> VerticalStore {
        closure(self.ruleset.clone(), &self.explicit())
    }

    /// Sorted closure, for direct comparison with
    /// `ShardedStore::to_sorted_vec`.
    pub fn to_sorted_vec(&self) -> Vec<Triple> {
        self.closure().to_sorted_vec()
    }
}

impl std::fmt::Debug for RecomputeOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecomputeOracle")
            .field("ruleset", &self.ruleset.name())
            .field("explicit", &self.explicit.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::vocab::RDFS_SUB_CLASS_OF;
    use slider_model::NodeId;

    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(NodeId(1000 + a), RDFS_SUB_CLASS_OF, NodeId(1000 + b))
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        assert_eq!(oracle.add(&[sco(1, 2), sco(2, 3), sco(1, 2)]), 2);
        assert_eq!(oracle.explicit_len(), 2);
        // Chain of 2 closes with the transitive edge.
        assert_eq!(
            oracle.to_sorted_vec(),
            vec![sco(1, 2), sco(1, 3), sco(2, 3)]
        );
        assert_eq!(oracle.remove(&[sco(2, 3), sco(9, 9)]), 1);
        assert_eq!(oracle.to_sorted_vec(), vec![sco(1, 2)]);
        assert_eq!(oracle.explicit_len(), 1);
    }

    #[test]
    fn closure_is_recomputed_not_cached() {
        let mut oracle = RecomputeOracle::new(Ruleset::rho_df());
        oracle.add(&[sco(1, 2), sco(2, 3)]);
        let first = oracle.to_sorted_vec();
        oracle.remove(&[sco(1, 2)]);
        oracle.add(&[sco(1, 2)]);
        assert_eq!(oracle.to_sorted_vec(), first);
    }

    #[test]
    fn empty_oracle() {
        let oracle = RecomputeOracle::new(Ruleset::rho_df());
        assert!(oracle.to_sorted_vec().is_empty());
        assert!(oracle.explicit().is_empty());
    }
}
