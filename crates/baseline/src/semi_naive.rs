//! The semi-naive batch materialiser (delta-driven), also the test oracle.

use crate::BatchStats;
use slider_model::Triple;
use slider_rules::Ruleset;
use slider_store::VerticalStore;

/// Batch reasoner that applies rules only to the previous round's delta.
///
/// Classic semi-naive evaluation: round *k* joins the triples discovered in
/// round *k−1* against the full store (both directions — the rules
/// implement paper Algorithm 1), so each conclusion is derived from a given
/// premise pair at most a constant number of times. Single-threaded and
/// deliberately simple; used as the correctness oracle throughout the test
/// suite.
pub struct SemiNaiveReasoner {
    ruleset: Ruleset,
    store: VerticalStore,
    stats: BatchStats,
}

impl SemiNaiveReasoner {
    /// Creates a reasoner over `ruleset` with an empty store.
    pub fn new(ruleset: Ruleset) -> Self {
        SemiNaiveReasoner {
            ruleset,
            store: VerticalStore::new(),
            stats: BatchStats::default(),
        }
    }

    /// Inserts `triples` and runs delta-driven rounds to fixpoint.
    ///
    /// Can be called repeatedly: each call incrementally extends the
    /// closure (this is what makes it a fair oracle for Slider's
    /// incremental mode).
    pub fn materialize_all(&mut self, triples: &[Triple]) -> BatchStats {
        let mut delta = Vec::new();
        self.store.insert_batch(triples, &mut delta);
        let mut out = Vec::new();
        while !delta.is_empty() {
            self.stats.rounds += 1;
            out.clear();
            for rule in self.ruleset.rules() {
                rule.apply(&self.store.view(), &delta, &mut out);
            }
            self.stats.derived += out.len();
            delta.clear();
            let inserted = self.store.insert_batch(&out, &mut delta);
            self.stats.inserted += inserted;
        }
        self.stats
    }

    /// The materialised store.
    pub fn store(&self) -> &VerticalStore {
        &self.store
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Consumes the reasoner, returning the store.
    pub fn into_store(self) -> VerticalStore {
        self.store
    }
}

/// Computes the closure of `triples` under `ruleset` — the one-line oracle
/// used by integration and property tests.
pub fn closure(ruleset: Ruleset, triples: &[Triple]) -> VerticalStore {
    let mut r = SemiNaiveReasoner::new(ruleset);
    r.materialize_all(triples);
    r.into_store()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveReasoner;
    use slider_model::vocab::{RDFS_DOMAIN, RDFS_SUB_CLASS_OF, RDFS_SUB_PROPERTY_OF, RDF_TYPE};
    use slider_model::NodeId;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }
    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
    }
    fn ty(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDF_TYPE, n(b))
    }

    #[test]
    fn agrees_with_naive_on_chains() {
        let input: Vec<Triple> = (1..30).map(|i| sco(i, i + 1)).collect();
        let semi = closure(Ruleset::rho_df(), &input);
        let mut naive = NaiveReasoner::new(Ruleset::rho_df());
        naive.materialize_all(&input);
        assert_eq!(semi.to_sorted_vec(), naive.store().to_sorted_vec());
    }

    #[test]
    fn agrees_with_naive_on_mixed_schema() {
        let input = vec![
            sco(1, 2),
            sco(2, 3),
            ty(9, 1),
            Triple::new(n(5), RDFS_SUB_PROPERTY_OF, n(6)),
            Triple::new(n(6), RDFS_DOMAIN, n(2)),
            Triple::new(n(7), n(5), n(8)),
        ];
        let semi = closure(Ruleset::rho_df(), &input);
        let mut naive = NaiveReasoner::new(Ruleset::rho_df());
        naive.materialize_all(&input);
        assert_eq!(semi.to_sorted_vec(), naive.store().to_sorted_vec());
        // Spot-check the interesting derivation: (7 n5 8) → spo → (7 n6 8)
        // → domain n2 → (7 type 2) → sco → (7 type 3).
        assert!(semi.contains(ty(7, 2)));
        assert!(semi.contains(ty(7, 3)));
    }

    #[test]
    fn semi_naive_derives_less_than_naive() {
        let input: Vec<Triple> = (1..40).map(|i| sco(i, i + 1)).collect();
        let mut semi = SemiNaiveReasoner::new(Ruleset::rho_df());
        let s = semi.materialize_all(&input);
        let mut naive = NaiveReasoner::new(Ruleset::rho_df());
        let nv = naive.materialize_all(&input);
        assert_eq!(semi.store().len(), naive.store().len());
        assert!(
            s.derived < nv.derived,
            "semi-naive {} !< naive {}",
            s.derived,
            nv.derived
        );
    }

    #[test]
    fn incremental_calls_reach_batch_closure() {
        let input: Vec<Triple> = (1..25).map(|i| sco(i, i + 1)).collect();
        // Batch.
        let batch = closure(Ruleset::rho_df(), &input);
        // Three increments, interleaved order.
        let mut inc = SemiNaiveReasoner::new(Ruleset::rho_df());
        for chunk in input.chunks(7) {
            inc.materialize_all(chunk);
        }
        assert_eq!(batch.to_sorted_vec(), inc.store().to_sorted_vec());
    }

    #[test]
    fn empty_input() {
        let st = closure(Ruleset::rho_df(), &[]);
        assert!(st.is_empty());
    }
}
