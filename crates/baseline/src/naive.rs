//! The naive batch materialiser.

use crate::BatchStats;
use slider_model::Triple;
use slider_rules::Ruleset;
use slider_store::VerticalStore;

/// Batch reasoner that re-derives **everything** each round.
///
/// Every fixpoint round snapshots the current store contents and hands the
/// whole snapshot to every rule as its "delta". All conclusions — new and
/// duplicate — are re-derived each round; only the store's idempotent
/// insert keeps the closure finite. This is the batch-processing régime the
/// paper positions Slider against.
pub struct NaiveReasoner {
    ruleset: Ruleset,
    store: VerticalStore,
    stats: BatchStats,
}

impl NaiveReasoner {
    /// Creates a reasoner over `ruleset` with an empty store.
    pub fn new(ruleset: Ruleset) -> Self {
        NaiveReasoner {
            ruleset,
            store: VerticalStore::new(),
            stats: BatchStats::default(),
        }
    }

    /// Adds input triples (no inference yet).
    pub fn load(&mut self, triples: &[Triple]) {
        for &t in triples {
            self.store.insert(t);
        }
    }

    /// Runs rules over the full store until a round derives nothing new.
    pub fn materialize(&mut self) -> BatchStats {
        let mut out = Vec::new();
        loop {
            self.stats.rounds += 1;
            // Snapshot: rules must not observe triples inserted this round,
            // otherwise a round is not a well-defined batch iteration.
            let snapshot: Vec<Triple> = self.store.iter().collect();
            out.clear();
            for rule in self.ruleset.rules() {
                rule.apply(&self.store.view(), &snapshot, &mut out);
            }
            self.stats.derived += out.len();
            let mut fresh = Vec::new();
            let inserted = self.store.insert_batch(&out, &mut fresh);
            self.stats.inserted += inserted;
            if inserted == 0 {
                return self.stats;
            }
        }
    }

    /// `load` + `materialize` in one call.
    pub fn materialize_all(&mut self, triples: &[Triple]) -> BatchStats {
        self.load(triples);
        self.materialize()
    }

    /// The materialised store.
    pub fn store(&self) -> &VerticalStore {
        &self.store
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Consumes the reasoner, returning the store.
    pub fn into_store(self) -> VerticalStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slider_model::vocab::{RDFS_SUB_CLASS_OF, RDF_TYPE};
    use slider_model::NodeId;

    fn n(v: u64) -> NodeId {
        NodeId(1000 + v)
    }
    fn sco(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDFS_SUB_CLASS_OF, n(b))
    }
    fn ty(a: u64, b: u64) -> Triple {
        Triple::new(n(a), RDF_TYPE, n(b))
    }

    #[test]
    fn chain_closure_size() {
        // Chain 1→2→…→k: closure has k(k-1)/2 subClassOf triples.
        let k = 20;
        let input: Vec<Triple> = (1..k).map(|i| sco(i, i + 1)).collect();
        let mut r = NaiveReasoner::new(Ruleset::rho_df());
        r.materialize_all(&input);
        let expected = (k * (k - 1) / 2) as usize;
        assert_eq!(r.store().count_with_p(RDFS_SUB_CLASS_OF), expected);
    }

    #[test]
    fn instance_typing_propagates() {
        let mut r = NaiveReasoner::new(Ruleset::rho_df());
        r.materialize_all(&[sco(1, 2), sco(2, 3), ty(9, 1)]);
        for c in [1, 2, 3] {
            assert!(r.store().contains(ty(9, c)), "missing type {c}");
        }
    }

    #[test]
    fn naive_rederives_duplicates_every_round() {
        let k = 10;
        let input: Vec<Triple> = (1..k).map(|i| sco(i, i + 1)).collect();
        let mut r = NaiveReasoner::new(Ruleset::rho_df());
        let stats = r.materialize_all(&input);
        // The duplicate-limitation motivation: naive derivations far exceed
        // unique insertions.
        assert!(stats.derived > 2 * stats.inserted, "{stats:?}");
        assert!(stats.rounds >= 3, "{stats:?}");
    }

    #[test]
    fn empty_input_terminates_immediately() {
        let mut r = NaiveReasoner::new(Ruleset::rho_df());
        let stats = r.materialize();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.inserted, 0);
        assert!(r.store().is_empty());
    }

    #[test]
    fn idempotent_rerun() {
        let mut r = NaiveReasoner::new(Ruleset::rho_df());
        r.materialize_all(&[sco(1, 2), sco(2, 3)]);
        let len = r.store().len();
        r.materialize();
        assert_eq!(r.store().len(), len);
    }
}
